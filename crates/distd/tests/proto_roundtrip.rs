//! Property coverage for everything new on the wire and in the chaos
//! layer:
//!
//! - every protocol message — batched leases with arbitrary block lists
//!   included — round-trips its sealed frame exactly, and any single-bit
//!   corruption or truncation is detected;
//! - segment manifest frames get the same treatment;
//! - the chaos schedule is a pure function of `(seed, connection,
//!   frame index)`: two schedules built from the same config agree on
//!   every decision, so a failing storm replays exactly from its seed,
//!   and the designated liveness connections never fault at any level.

use hb_distd::{
    ChaosConfig, ChaosSchedule, LeaseBlock, Msg, RxFault, SegmentManifest, SegmentRecord, TxFault,
};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = LeaseBlock> {
    (
        0u32..40,
        0u32..8,
        0u32..64,
        proptest::collection::vec(1u32..10_000, 0..24),
    )
        .prop_map(|(day, shard, seq, ranks)| LeaseBlock {
            day,
            shard,
            seq,
            ranks,
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        any::<u64>().prop_map(|fingerprint| Msg::Hello { fingerprint }),
        any::<u32>().prop_map(|worker_id| Msg::Welcome { worker_id }),
        proptest::string::string_regex("[a-z ]{0,40}")
            .unwrap()
            .prop_map(|reason| Msg::Reject { reason }),
        any::<u32>().prop_map(|worker_id| Msg::RequestLease { worker_id }),
        (any::<u64>(), proptest::collection::vec(arb_block(), 1..6))
            .prop_map(|(lease_id, blocks)| Msg::Lease { lease_id, blocks }),
        (1u32..60_000).prop_map(|millis| Msg::Wait { millis }),
        Just(Msg::Done),
        (any::<u32>(), any::<u64>())
            .prop_map(|(worker_id, lease_id)| Msg::Heartbeat { worker_id, lease_id }),
        Just(Msg::HeartbeatAck),
        Just(Msg::Expired),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(lease_id, frame)| Msg::SubmitChunk { lease_id, frame }),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(accepted, duplicate, done)| {
            Msg::SubmitAck {
                accepted,
                duplicate,
                done,
            }
        }),
    ]
}

fn arb_manifest() -> impl Strategy<Value = SegmentManifest> {
    proptest::collection::vec(
        (0u32..64, 0u32..8, 0u32..256, 1u64..100_000).prop_map(|(day, shard, seq, frame_len)| {
            SegmentRecord {
                day,
                shard,
                seq,
                frame_len,
            }
        }),
        0..32,
    )
    .prop_map(|records| SegmentManifest { records })
}

proptest! {
    #[test]
    fn any_message_round_trips(msg in arb_msg()) {
        let frame = msg.encode();
        let back = Msg::decode(&frame).expect("clean frame decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn message_bit_corruption_is_always_detected(
        msg in arb_msg(),
        pos_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let frame = msg.encode();
        let pos = pos_seed % frame.len();
        let mut bad = frame.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            Msg::decode(&bad).is_err(),
            "bit {} of byte {} (frame len {}) went undetected",
            bit, pos, frame.len()
        );
    }

    #[test]
    fn message_truncation_is_always_detected(
        msg in arb_msg(),
        cut_seed in 0usize..1_000_000,
    ) {
        let frame = msg.encode();
        let keep = cut_seed % frame.len();
        prop_assert!(
            Msg::decode(&frame[..keep]).is_err(),
            "truncation to {} of {} went undetected",
            keep, frame.len()
        );
    }

    #[test]
    fn manifest_round_trips_and_corruption_is_detected(
        manifest in arb_manifest(),
        pos_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let frame = manifest.encode();
        let back = SegmentManifest::decode(&frame).expect("clean manifest decodes");
        prop_assert_eq!(&back, &manifest);
        let pos = pos_seed % frame.len();
        let mut bad = frame.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            SegmentManifest::decode(&bad).is_err(),
            "manifest bit {} of byte {} went undetected",
            bit, pos
        );
        let keep = pos; // any strict prefix
        prop_assert!(
            SegmentManifest::decode(&frame[..keep]).is_err(),
            "manifest truncation to {} of {} went undetected",
            keep, frame.len()
        );
    }

    #[test]
    fn chaos_schedule_is_replay_deterministic(
        (seed, level) in (any::<u64>(), 0u32..10),
        (conn, idx) in (0u32..64, 0u64..256),
        (is_submit, is_heartbeat) in (any::<bool>(), any::<bool>()),
        n_bytes in 22usize..4096,
    ) {
        let a = ChaosSchedule::new(ChaosConfig::new(seed, level));
        let b = ChaosSchedule::new(ChaosConfig::new(seed, level));
        let (is_submit, is_heartbeat) = (is_submit && !is_heartbeat, is_heartbeat && !is_submit);
        prop_assert_eq!(
            a.tx_fault(conn, idx, is_submit, is_heartbeat),
            b.tx_fault(conn, idx, is_submit, is_heartbeat)
        );
        prop_assert_eq!(a.rx_fault(conn, idx), b.rx_fault(conn, idx));
        prop_assert_eq!(a.refuse_connect(conn), b.refuse_connect(conn));
        prop_assert_eq!(
            a.corrupt_bit(conn, idx, n_bytes),
            b.corrupt_bit(conn, idx, n_bytes)
        );
        prop_assert_eq!(
            a.truncate_at(conn, idx, n_bytes),
            b.truncate_at(conn, idx, n_bytes)
        );
        // Decisions within bounds.
        prop_assert!(a.corrupt_bit(conn, idx, n_bytes) < n_bytes * 8);
        let cut = a.truncate_at(conn, idx, n_bytes);
        prop_assert!(cut >= 1 && cut < n_bytes, "cut {} of {}", cut, n_bytes);
        // Liveness guarantee: quiet connections never fault.
        if a.is_quiet(conn) {
            prop_assert_eq!(a.tx_fault(conn, idx, is_submit, is_heartbeat), None::<TxFault>);
            prop_assert_eq!(a.rx_fault(conn, idx), None::<RxFault>);
            prop_assert!(!a.refuse_connect(conn));
        }
    }

    #[test]
    fn different_seeds_eventually_disagree(seed in any::<u64>()) {
        let a = ChaosSchedule::new(ChaosConfig::new(seed, 8));
        let b = ChaosSchedule::new(ChaosConfig::new(seed.wrapping_add(1), 8));
        let differs = (0..64u32).any(|conn| {
            (0..64u64).any(|idx| {
                a.tx_fault(conn, idx, true, false) != b.tx_fault(conn, idx, true, false)
            })
        });
        prop_assert!(differs, "adjacent seeds produced identical storms");
    }
}
