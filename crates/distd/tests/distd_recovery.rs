//! Process-level fabric tests: determinism across worker counts, crash
//! injection (`kill -9` a worker mid-lease), and coordinator restart from
//! the spool. The bar for every scenario is the same — the figure CSVs
//! must be **byte-identical** to a single-process
//! `run_campaign_streamed` run.

use hb_analysis::{indexed_reports, DatasetIndexBuilder};
use hb_crawler::{run_campaign_streamed, CampaignConfig};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: u32 = 2;
const CHUNK_VISITS: usize = 32;

/// Kill the child on scope exit so a failing assert never leaks
/// processes into the test runner.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hb-distd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// The ground truth: the single-process streamed campaign, folded through
/// the same incremental index, rendered to the same CSV bytes.
fn reference_figures() -> BTreeMap<String, String> {
    let eco_cfg = EcosystemConfig::tiny_scale();
    let eco = Ecosystem::generate(eco_cfg.clone());
    let cfg = CampaignConfig {
        shards: SHARDS,
        chunk_visits: CHUNK_VISITS,
        ..CampaignConfig::default()
    };
    let mut builder = DatasetIndexBuilder::new(eco_cfg.n_sites, eco_cfg.crawl_days);
    run_campaign_streamed(eco.factory(), &cfg, &mut |chunk| builder.push_chunk(&chunk));
    let index = builder.finish();
    indexed_reports(&index)
        .into_iter()
        .map(|r| (format!("{}.csv", r.id), r.render()))
        .collect()
}

fn read_figures(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("figures dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") {
            out.insert(name, std::fs::read_to_string(entry.path()).expect("read csv"));
        }
    }
    out
}

fn assert_figures_match(got: &BTreeMap<String, String>, want: &BTreeMap<String, String>, label: &str) {
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "{label}: figure set differs"
    );
    for (name, want_bytes) in want {
        assert_eq!(
            got.get(name).expect("checked above"),
            want_bytes,
            "{label}: {name} is not byte-identical"
        );
    }
}

/// Spawn the coordinator and block until it prints its bound address.
/// Returns the guarded child, the address, and the stdout reader (the
/// trailing `STATS` line is read from it after exit).
fn spawn_coord(args: &[String]) -> (KillOnDrop, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_distd-coord"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn distd-coord");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .trim()
        .to_string();
    (KillOnDrop(child), addr, reader)
}

fn worker_cmd(addr: &str, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_distd-worker"));
    cmd.args([
        "--connect",
        addr,
        "--scale",
        "tiny",
        "--shards",
        &SHARDS.to_string(),
        "--chunk-visits",
        &CHUNK_VISITS.to_string(),
    ])
    .args(extra)
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    cmd
}

fn coord_args(out: &Path, extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--scale",
        "tiny",
        "--shards",
        &SHARDS.to_string(),
        "--chunk-visits",
        &CHUNK_VISITS.to_string(),
        "--out",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.push(out.display().to_string());
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

/// Wait for the coordinator to exit successfully and parse its `STATS`
/// counters.
fn finish_coord(
    mut coord: KillOnDrop,
    mut reader: BufReader<std::process::ChildStdout>,
) -> BTreeMap<String, u64> {
    let status = coord.0.wait().expect("wait for coordinator");
    assert!(status.success(), "coordinator failed: {status:?}");
    let mut stats = BTreeMap::new();
    let mut line = String::new();
    while {
        line.clear();
        reader.read_line(&mut line).expect("read stats") > 0
    } {
        if let Some(rest) = line.strip_prefix("STATS ") {
            for kv in rest.split_whitespace() {
                if let Some((k, v)) = kv.split_once('=') {
                    stats.insert(k.to_string(), v.parse::<u64>().expect("numeric counter"));
                }
            }
        }
    }
    assert!(!stats.is_empty(), "coordinator printed no STATS line");
    stats
}

fn spool_file_count(dir: &Path) -> usize {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".hbwf"))
            .count(),
        Err(_) => 0,
    }
}

#[test]
fn one_worker_matches_in_process_figures() {
    let out = tmp_dir("one-worker-out");
    let (coord, addr, reader) = spawn_coord(&coord_args(&out, &[]));
    let _worker = KillOnDrop(worker_cmd(&addr, &[]).spawn().expect("spawn worker"));
    let stats = finish_coord(coord, reader);
    assert_eq!(stats["frames_rejected"], 0);
    assert_eq!(stats["chunks_folded"], stats["blocks_total"]);
    assert_figures_match(&read_figures(&out), &reference_figures(), "1 worker");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn three_workers_match_in_process_figures() {
    let out = tmp_dir("three-workers-out");
    let (coord, addr, reader) = spawn_coord(&coord_args(&out, &[]));
    let _workers: Vec<KillOnDrop> = (0..3)
        .map(|_| KillOnDrop(worker_cmd(&addr, &[]).spawn().expect("spawn worker")))
        .collect();
    let stats = finish_coord(coord, reader);
    assert_eq!(stats["frames_rejected"], 0);
    assert_eq!(stats["chunks_folded"], stats["blocks_total"]);
    assert_figures_match(&read_figures(&out), &reference_figures(), "3 workers");
    let _ = std::fs::remove_dir_all(&out);
}

/// The full gauntlet: spool some chunks, SIGKILL the coordinator, restart
/// it from the spool, SIGKILL a worker mid-lease, and still demand
/// byte-identical figures plus observable recovery counters.
#[test]
fn coordinator_restart_and_worker_kill_recover_byte_identical() {
    let out = tmp_dir("recovery-out");
    let spool = tmp_dir("recovery-spool");
    let spool_arg = spool.display().to_string();

    // --- Phase 1: run until a few chunks are durable, then crash the
    // coordinator (SIGKILL — no graceful shutdown path).
    {
        let (_coord, addr, _reader) = spawn_coord(&coord_args(
            &out,
            &["--spool", &spool_arg, "--lease-timeout-ms", "1500"],
        ));
        // Slowed worker so the campaign outlives the crash point.
        let _worker = KillOnDrop(
            worker_cmd(&addr, &["--visit-delay-us", "5000", "--heartbeat-ms", "300"])
                .spawn()
                .expect("spawn phase-1 worker"),
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        while spool_file_count(&spool) < 2 {
            assert!(
                Instant::now() < deadline,
                "no chunks reached the spool in time"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // KillOnDrop delivers SIGKILL to coordinator and worker here.
    }
    let spooled_before_restart = spool_file_count(&spool);
    assert!(spooled_before_restart >= 2);

    // --- Phase 2: restart the coordinator on the same spool. A slow
    // worker takes a lease and is SIGKILLed mid-block; two healthy
    // workers finish the campaign, picking up the re-issued lease.
    let (coord, addr, reader) = spawn_coord(&coord_args(
        &out,
        &["--spool", &spool_arg, "--lease-timeout-ms", "1500"],
    ));
    let victim = KillOnDrop(
        worker_cmd(&addr, &["--visit-delay-us", "20000", "--heartbeat-ms", "300"])
            .spawn()
            .expect("spawn victim worker"),
    );
    // Wait for the victim's first submit to land in the spool — proof it
    // is warmed up and cycling leases — then kill it 150 ms into its next
    // block (a full 32-visit block takes >= 640 ms at 20 ms per visit),
    // so the SIGKILL is guaranteed to land mid-lease.
    let before = spool_file_count(&spool);
    let deadline = Instant::now() + Duration::from_secs(60);
    while spool_file_count(&spool) <= before {
        assert!(Instant::now() < deadline, "victim never submitted a block");
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(150));
    drop(victim);
    let _workers: Vec<KillOnDrop> = (0..2)
        .map(|_| KillOnDrop(worker_cmd(&addr, &[]).spawn().expect("spawn worker")))
        .collect();
    let stats = finish_coord(coord, reader);

    assert!(
        stats["chunks_replayed"] >= spooled_before_restart as u64,
        "restart must replay the spooled chunks: {stats:?}"
    );
    assert!(
        stats["leases_reissued"] >= 1,
        "the killed worker's lease must be re-issued: {stats:?}"
    );
    assert_eq!(stats["chunks_folded"], stats["blocks_total"]);
    assert_eq!(stats["frames_rejected"], 0);
    assert_figures_match(
        &read_figures(&out),
        &reference_figures(),
        "restart + kill -9",
    );
    let _ = std::fs::remove_dir_all(&out);
    let _ = std::fs::remove_dir_all(&spool);
}

/// A corrupted spool file must be rejected on replay (counted, skipped)
/// and its block re-crawled — the figures still come out byte-identical.
#[test]
fn corrupt_spool_file_is_rejected_and_recrawled() {
    let out = tmp_dir("corrupt-out");
    let spool = tmp_dir("corrupt-spool");
    let spool_arg = spool.display().to_string();

    // Run a full campaign to populate the spool.
    {
        let (coord, addr, reader) = spawn_coord(&coord_args(&out, &["--spool", &spool_arg]));
        let _worker = KillOnDrop(worker_cmd(&addr, &[]).spawn().expect("spawn worker"));
        let stats = finish_coord(coord, reader);
        assert_eq!(stats["chunks_folded"], stats["blocks_total"]);
    }
    // Corrupt one spooled frame: flip a byte in the middle.
    let victim = std::fs::read_dir(&spool)
        .expect("spool dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "hbwf"))
        .expect("at least one spool file");
    let mut bytes = std::fs::read(&victim).expect("read spool file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, &bytes).expect("corrupt spool file");

    // Restart: the corrupt frame is refused, its block re-leased to a
    // fresh worker, everything else replayed.
    let (coord, addr, reader) = spawn_coord(&coord_args(&out, &["--spool", &spool_arg]));
    let _worker = KillOnDrop(worker_cmd(&addr, &[]).spawn().expect("spawn worker"));
    let stats = finish_coord(coord, reader);
    assert!(
        stats["frames_rejected"] >= 1,
        "the corrupt frame must be rejected: {stats:?}"
    );
    assert_eq!(stats["chunks_folded"], stats["blocks_total"]);
    assert_figures_match(&read_figures(&out), &reference_figures(), "corrupt spool");
    let _ = std::fs::remove_dir_all(&out);
    let _ = std::fs::remove_dir_all(&spool);
}
