//! Demand partner analyses: popularity (Fig. 8), partners per site
//! (Fig. 9), combinations (Fig. 10), and bid share per facet (Fig. 11).
//!
//! All builders read the columnar [`DatasetIndex`]'s precomputed site
//! table (domain-sorted, partner sets name-sorted) instead of rebuilding
//! per-site partner unions from the visit rows.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_stats::{fmt_pct, Align, Counter, Ecdf, Table};
use std::collections::BTreeMap;

/// Fig. 8: top Demand Partners by share of HB sites they appear on.
pub fn f08_top_partners(ix: &DatasetIndex) -> FigureReport {
    let n_sites = ix.n_hb_sites().max(1);
    let mut counter = Counter::new();
    for site in &ix.sites {
        for p in &site.partners {
            counter.add(ix.str(*p));
        }
    }
    let ranked = counter.ranked();
    let mut table = Table::new(
        "Fig. 8 — top Demand Partners (share of HB sites)",
        &["partner", "sites", "share"],
    )
    .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    for (name, count) in ranked.iter().take(11) {
        table.row(vec![
            name.clone(),
            count.to_string(),
            fmt_pct(*count as f64 / n_sites as f64),
        ]);
    }
    // The paper's "Other" bucket: every partner outside the top 11.
    let other_sites = ix
        .sites
        .iter()
        .filter(|site| {
            site.partners
                .iter()
                .any(|p| !ranked.iter().take(11).any(|(n, _)| n == ix.str(*p)))
        })
        .count();
    table.row(vec![
        "Other".into(),
        other_sites.to_string(),
        fmt_pct(other_sites as f64 / n_sites as f64),
    ]);

    let dfp_share = counter.count("DFP") as f64 / n_sites as f64;
    let top_is_dfp = ranked.first().map(|(n, _)| n == "DFP").unwrap_or(false);
    FigureReport {
        id: "F8".into(),
        title: "Top Demand Partners in HB".into(),
        paper_expectation: "DFP on >80% of HB sites; other 73 partners cover 36%".into(),
        table,
        metrics: vec![
            ("dfp_share".into(), dfp_share),
            ("top_is_dfp".into(), if top_is_dfp { 1.0 } else { 0.0 }),
            ("distinct_partners".into(), counter.distinct() as f64),
            (
                "other_share".into(),
                other_sites as f64 / n_sites as f64,
            ),
        ],
        notes: vec![],
    }
}

/// Fig. 9: ECDF of Demand Partners per website.
pub fn f09_partners_per_site(ix: &DatasetIndex) -> FigureReport {
    let counts: Vec<f64> = ix.sites.iter().map(|s| s.partners.len() as f64).collect();
    let ecdf = Ecdf::from_iter(counts.iter().copied());
    let mut table = Table::new(
        "Fig. 9 — Demand Partners per HB site (ECDF)",
        &["partners", "P[X<=x]"],
    );
    for k in [1u32, 2, 3, 5, 10, 15, 20] {
        table.row(vec![k.to_string(), format!("{:.4}", ecdf.eval(k as f64))]);
    }
    let share_one = counts.iter().filter(|&&c| c == 1.0).count() as f64 / counts.len().max(1) as f64;
    let share_ge5 = counts.iter().filter(|&&c| c >= 5.0).count() as f64 / counts.len().max(1) as f64;
    let share_ge10 =
        counts.iter().filter(|&&c| c >= 10.0).count() as f64 / counts.len().max(1) as f64;
    FigureReport {
        id: "F9".into(),
        title: "Demand Partners per website".into(),
        paper_expectation: ">50% of sites use one partner; ~20% use 5+; ~5% use 10+; max ~20"
            .into(),
        table,
        metrics: vec![
            ("share_one_partner".into(), share_one),
            ("share_ge5".into(), share_ge5),
            ("share_ge10".into(), share_ge10),
            (
                "max_partners".into(),
                counts.iter().copied().fold(0.0, f64::max),
            ),
        ],
        notes: vec![],
    }
}

/// Fig. 10: most frequent Demand Partner combinations.
pub fn f10_combinations(ix: &DatasetIndex) -> FigureReport {
    let n_sites = ix.n_hb_sites().max(1);
    let mut combos = Counter::new();
    let mut combo = String::new();
    for site in &ix.sites {
        // Partner sets are already name-sorted in the index.
        combo.clear();
        for (i, p) in site.partners.iter().enumerate() {
            if i > 0 {
                combo.push_str(", ");
            }
            combo.push_str(ix.str(*p));
        }
        combos.add(combo.as_str());
    }
    let mut table = Table::new(
        "Fig. 10 — top Demand Partner combinations",
        &["combination", "sites", "share"],
    )
    .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    for (combo, count) in combos.top(15) {
        table.row(vec![
            combo.clone(),
            count.to_string(),
            fmt_pct(count as f64 / n_sites as f64),
        ]);
    }
    let dfp_alone = combos.count("DFP") as f64 / n_sites as f64;
    // Share of multi-partner combinations that include DFP.
    let (mut with_dfp, mut multi) = (0u64, 0u64);
    for (combo, count) in combos.iter() {
        if combo.contains(", ") {
            multi += count;
            if combo.split(", ").any(|p| p == "DFP") {
                with_dfp += count;
            }
        }
    }
    FigureReport {
        id: "F10".into(),
        title: "Most frequent Demand Partner combinations".into(),
        paper_expectation: "DFP alone on 48% of sites; DFP inside 51% of competing groups".into(),
        table,
        metrics: vec![
            ("dfp_alone_share".into(), dfp_alone),
            (
                "dfp_in_groups_share".into(),
                with_dfp as f64 / multi.max(1) as f64,
            ),
            ("distinct_combinations".into(), combos.distinct() as f64),
        ],
        notes: vec![],
    }
}

/// Fig. 11: top partners by share of bids, per facet.
pub fn f11_bids_by_facet(ix: &DatasetIndex) -> FigureReport {
    let mut per_facet: BTreeMap<&str, Counter> = BTreeMap::new();
    for (row, bidder) in ix.b_bidder.iter().enumerate() {
        let Some(facet) = ix.v_facet[ix.b_visit[row] as usize] else {
            continue;
        };
        per_facet
            .entry(facet.label())
            .or_default()
            .add(ix.str(*bidder));
    }
    let mut table = Table::new(
        "Fig. 11 — top bidders by share of bids, per facet",
        &["facet", "bidder", "bids", "share"],
    )
    .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    let mut metrics = Vec::new();
    for (facet, counter) in &per_facet {
        for (code, count) in counter.top(10) {
            table.row(vec![
                facet.to_string(),
                code.clone(),
                count.to_string(),
                fmt_pct(count as f64 / counter.total().max(1) as f64),
            ]);
        }
        if let Some((top_code, _)) = counter.top(2).first() {
            let is_big = matches!(top_code.as_str(), "rubicon" | "appnexus" | "ix");
            metrics.push((
                format!("{facet}_top_is_major_exchange"),
                if is_big { 1.0 } else { 0.0 },
            ));
        }
    }
    FigureReport {
        id: "F11".into(),
        title: "Top Demand Partners per HB facet (by bids)".into(),
        paper_expectation: "Rubicon and AppNexus lead every facet; Index follows".into(),
        table,
        metrics,
        notes: vec!["server/hybrid bid evidence comes from ad-server responses".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn f08_dfp_dominates() {
        let ix = small_index();
        let r = f08_top_partners(ix);
        assert_eq!(r.metric("top_is_dfp"), Some(1.0));
        let share = r.metric("dfp_share").unwrap();
        assert!(share > 0.65, "DFP share {share}");
        assert!(r.metric("distinct_partners").unwrap() > 10.0);
    }

    #[test]
    fn f09_partner_counts() {
        let ix = small_index();
        let r = f09_partners_per_site(ix);
        let one = r.metric("share_one_partner").unwrap();
        assert!(one > 0.35 && one < 0.70, "one-partner share {one}");
        assert!(r.metric("max_partners").unwrap() <= 20.0);
    }

    #[test]
    fn f10_dfp_alone_is_top_combo() {
        let ix = small_index();
        let r = f10_combinations(ix);
        let alone = r.metric("dfp_alone_share").unwrap();
        assert!(alone > 0.30, "DFP-alone share {alone}");
    }

    #[test]
    fn f11_major_exchanges_lead() {
        let ix = small_index();
        let r = f11_bids_by_facet(ix);
        // At least two of the three facets led by a major exchange.
        let led: f64 = r
            .metrics
            .iter()
            .filter(|(k, _)| k.ends_with("_top_is_major_exchange"))
            .map(|(_, v)| v)
            .sum();
        assert!(led >= 2.0, "facets led by majors: {led}");
    }
}
