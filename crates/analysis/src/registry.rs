//! The experiment registry: every table/figure builder in one place.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_crawler::{AdoptionPoint, CrawlDataset, OverlapPoint};

/// Build every dataset-driven report (T1 + A1/A2 + F8..F24 + X1) from a
/// prebuilt index (build once, read many).
pub fn indexed_reports(ix: &DatasetIndex) -> Vec<FigureReport> {
    vec![
        crate::summary::t1_summary(ix),
        crate::summary::adoption_bands(ix),
        crate::summary::facet_breakdown(ix),
        crate::partners::f08_top_partners(ix),
        crate::partners::f09_partners_per_site(ix),
        crate::partners::f10_combinations(ix),
        crate::partners::f11_bids_by_facet(ix),
        crate::latency::f12_latency_ecdf(ix),
        crate::latency::f13_latency_vs_rank(ix),
        crate::latency::f14_partner_latency(ix),
        crate::latency::f15_latency_vs_partners(ix),
        crate::latency::f16_latency_vs_popularity(ix),
        crate::late::f17_late_ecdf(ix),
        crate::late::f18_late_by_partner(ix),
        crate::slots::f19_slots_ecdf(ix),
        crate::slots::f20_latency_vs_slots(ix),
        crate::slots::f21_sizes(ix),
        crate::prices::f22_price_ecdf(ix),
        crate::prices::f23_price_by_size(ix),
        crate::prices::f24_price_by_popularity(ix),
        crate::waterfall_cmp::x01_waterfall_compare(ix),
    ]
}

/// Build every dataset-driven report, indexing the dataset first.
pub fn dataset_reports(ds: &CrawlDataset) -> Vec<FigureReport> {
    let ix = DatasetIndex::build(ds);
    indexed_reports(&ix)
}

/// Build the historical reports (F4 + F4b) from the Wayback study outputs.
pub fn history_reports(
    adoption: &[AdoptionPoint],
    overlaps: &[OverlapPoint],
) -> Vec<FigureReport> {
    vec![
        crate::adoption::f04_adoption(adoption),
        crate::adoption::f04b_overlaps(overlaps),
    ]
}

/// Build everything.
pub fn all_reports(
    ds: &CrawlDataset,
    adoption: &[AdoptionPoint],
    overlaps: &[OverlapPoint],
) -> Vec<FigureReport> {
    let mut v = history_reports(adoption, overlaps);
    v.extend(dataset_reports(ds));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_dataset;
    use hb_crawler::{adoption_study, overlap_study};

    #[test]
    fn registry_builds_all_reports_with_unique_ids() {
        let ds = small_dataset();
        let adoption = adoption_study(1, 500);
        let overlaps = overlap_study(1, 500);
        let reports = all_reports(&ds, &adoption, &overlaps);
        assert_eq!(reports.len(), 23);
        let mut ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 23, "duplicate report id");
        for r in &reports {
            assert!(!r.render().is_empty());
            assert!(!r.to_csv().is_empty());
        }
    }
}
