//! Dataset summary (Table 1), adoption by rank band (§4.1), and the facet
//! breakdown (§4.6).
//!
//! All builders read the columnar [`DatasetIndex`].

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_stats::{fmt_pct, Align, Table};

/// Table 1: summary of collected data.
pub fn t1_summary(ix: &DatasetIndex) -> FigureReport {
    let n_hb_domains = ix.n_hb_sites();
    let auctions: u64 = ix.v_slots_auctioned.iter().map(|&s| s as u64).sum();
    let bids: u64 = ix.v_n_bids.iter().map(|&b| b as u64).sum();
    let partners = {
        let mut set: std::collections::HashSet<hb_core::Symbol> =
            ix.b_partner.iter().copied().collect();
        for site in &ix.sites {
            set.extend(site.partners.iter().copied());
        }
        set.len()
    };
    let weeks = (ix.n_days as f64 / 7.0).ceil();

    let mut table = Table::new("Table 1 — summary of collected data", &["data", "volume"])
        .with_aligns(&[Align::Left, Align::Right]);
    table.row(vec!["# of websites crawled".into(), ix.n_sites.to_string()]);
    table.row(vec!["# of websites with HB".into(), n_hb_domains.to_string()]);
    table.row(vec!["# of auctions detected".into(), auctions.to_string()]);
    table.row(vec!["# of bids detected".into(), bids.to_string()]);
    table.row(vec![
        "# of competing Demand Partners".into(),
        partners.to_string(),
    ]);
    table.row(vec!["# weeks of crawling".into(), format!("{weeks:.0}")]);

    FigureReport {
        id: "T1".into(),
        title: "Dataset summary".into(),
        paper_expectation:
            "35,000 crawled; 4,998 with HB; 798,629 auctions; 241,392 bids; 84 partners; 5 weeks"
                .into(),
        table,
        metrics: vec![
            ("websites_crawled".into(), ix.n_sites as f64),
            ("websites_with_hb".into(), n_hb_domains as f64),
            ("auctions".into(), auctions as f64),
            ("bids".into(), bids as f64),
            ("partners".into(), partners as f64),
            ("bids_per_auction".into(), bids as f64 / auctions.max(1) as f64),
        ],
        notes: vec![
            "auctions are counted per ad-slot, matching Table 1's auction/visit ratio".into(),
        ],
    }
}

/// §4.1: adoption by rank band and overall (paper: 20–23% top 5k,
/// 12–17% mid, 10–12% tail, 14.28% overall).
pub fn adoption_bands(ix: &DatasetIndex) -> FigureReport {
    let n = ix.n_sites.max(1);
    let top_band = n / 7;
    let mid_band = 3 * n / 7;
    let mut counts = [(0u32, 0u32); 3]; // (hb, total) per band
    for (row, &rank) in ix.d0_rank.iter().enumerate() {
        let band = if rank <= top_band.max(1) {
            0
        } else if rank <= mid_band.max(2) {
            1
        } else {
            2
        };
        counts[band].1 += 1;
        if ix.d0_hb[row] {
            counts[band].0 += 1;
        }
    }
    let rate = |i: usize| counts[i].0 as f64 / counts[i].1.max(1) as f64;
    let day0_total = ix.d0_rank.len();
    let day0_hb = ix.d0_hb.iter().filter(|&&hb| hb).count();
    let overall = day0_hb as f64 / day0_total.max(1) as f64;

    let mut table = Table::new("HB adoption by rank band", &["band", "sites", "hb", "rate"])
        .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    let labels = ["head (top 1/7)", "middle (to 3/7)", "tail"];
    for i in 0..3 {
        table.row(vec![
            labels[i].into(),
            counts[i].1.to_string(),
            counts[i].0.to_string(),
            fmt_pct(rate(i)),
        ]);
    }
    table.row(vec![
        "overall".into(),
        day0_total.to_string(),
        day0_hb.to_string(),
        fmt_pct(overall),
    ]);

    FigureReport {
        id: "A1".into(),
        title: "Adoption by rank band (§4.1)".into(),
        paper_expectation: "20-23% head, 12-17% middle, 10-12% tail; 14.28% overall".into(),
        table,
        metrics: vec![
            ("rate_head".into(), rate(0)),
            ("rate_mid".into(), rate(1)),
            ("rate_tail".into(), rate(2)),
            ("rate_overall".into(), overall),
        ],
        notes: vec![],
    }
}

/// §4.6: facet breakdown (paper: server 48%, hybrid 34.7%, client 17.3%).
pub fn facet_breakdown(ix: &DatasetIndex) -> FigureReport {
    let mut counts = std::collections::BTreeMap::new();
    // Classify each HB *site* by its day-0 facet.
    for (row, &hb) in ix.d0_hb.iter().enumerate() {
        if !hb {
            continue;
        }
        if let Some(f) = ix.d0_facet[row] {
            *counts.entry(f.label()).or_insert(0u32) += 1;
        }
    }
    let total: u32 = counts.values().sum();
    let share = |label: &str| {
        counts.get(label).copied().unwrap_or(0) as f64 / total.max(1) as f64
    };

    let mut table = Table::new("Facet breakdown (§4.6)", &["facet", "sites", "share"])
        .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    for label in ["server-side", "hybrid", "client-side"] {
        table.row(vec![
            label.into(),
            counts.get(label).copied().unwrap_or(0).to_string(),
            fmt_pct(share(label)),
        ]);
    }

    FigureReport {
        id: "A2".into(),
        title: "The three facets of HB (§4.6)".into(),
        paper_expectation: "server-side 48%, hybrid 34.7%, client-side 17.3%".into(),
        table,
        metrics: vec![
            ("share_server".into(), share("server-side")),
            ("share_hybrid".into(), share("hybrid")),
            ("share_client".into(), share("client-side")),
        ],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn t1_counts_match_dataset() {
        let ix = small_index();
        let ds = crate::test_fixtures::small_dataset();
        let r = t1_summary(ix);
        assert_eq!(r.metric("websites_crawled"), Some(ds.n_sites as f64));
        assert_eq!(r.metric("auctions"), Some(ds.total_auctions() as f64));
        assert_eq!(r.metric("partners"), Some(ds.distinct_partners().len() as f64));
        assert!(r.metric("bids_per_auction").unwrap() < 1.5);
        assert!(r.render().contains("Table 1"));
    }

    #[test]
    fn adoption_bands_are_rank_ordered() {
        let ix = small_index();
        let r = adoption_bands(ix);
        let head = r.metric("rate_head").unwrap();
        let tail = r.metric("rate_tail").unwrap();
        assert!(head > tail, "head {head} tail {tail}");
        let overall = r.metric("rate_overall").unwrap();
        assert!(overall > 0.08 && overall < 0.25, "overall {overall}");
    }

    #[test]
    fn facet_shares_sum_to_one() {
        let ix = small_index();
        let r = facet_breakdown(ix);
        let sum = r.metric("share_server").unwrap()
            + r.metric("share_hybrid").unwrap()
            + r.metric("share_client").unwrap();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.metric("share_server").unwrap() > r.metric("share_client").unwrap());
    }
}
