//! Shared test fixture: one tiny campaign, computed once per process.

use crate::index::DatasetIndex;
use hb_crawler::{run_campaign, CampaignConfig, CrawlDataset};
use hb_ecosystem::{Ecosystem, EcosystemConfig};
use std::sync::OnceLock;

/// A cached small-scale dataset for analysis unit tests.
pub fn small_dataset() -> &'static CrawlDataset {
    static DS: OnceLock<CrawlDataset> = OnceLock::new();
    DS.get_or_init(|| {
        let eco = Ecosystem::generate(EcosystemConfig::test_scale());
        run_campaign(&eco, &CampaignConfig::default())
    })
}

/// The cached columnar index over [`small_dataset`].
pub fn small_index() -> &'static DatasetIndex {
    static IX: OnceLock<DatasetIndex> = OnceLock::new();
    IX.get_or_init(|| DatasetIndex::build(small_dataset()))
}
