//! Bid-price analyses: price ECDF per facet (Fig. 22), price per ad size
//! (Fig. 23), price vs partner popularity (Fig. 24).
//!
//! All builders read the columnar [`DatasetIndex`] bid columns and its
//! precomputed partner popularity ranking.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_adtech::AdSize;
use hb_core::Symbol;
use hb_stats::{fmt_f, Align, Ecdf, GroupedSamples, Samples, Table, Whisker};
use std::collections::{BTreeMap, HashMap};

/// All bid prices (CPM) grouped by facet label.
fn prices_by_facet(ix: &DatasetIndex) -> BTreeMap<&'static str, Vec<f64>> {
    let mut map: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for (row, &cpm) in ix.b_cpm.iter().enumerate() {
        let Some(f) = ix.v_facet[ix.b_visit[row] as usize] else {
            continue;
        };
        if cpm > 0.0 {
            map.entry(f.label()).or_default().push(cpm);
        }
    }
    map
}

/// Fig. 22: ECDF of bid prices per facet.
pub fn f22_price_ecdf(ix: &DatasetIndex) -> FigureReport {
    let by_facet = prices_by_facet(ix);
    let mut table = Table::new(
        "Fig. 22 — bid prices per facet (CPM)",
        &["facet", "n", "p25", "median", "p75", "share > 0.5"],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut metrics = Vec::new();
    for (facet, prices) in &by_facet {
        let s = Samples::from_iter(prices.iter().copied());
        let ecdf = Ecdf::from_iter(prices.iter().copied());
        table.row(vec![
            facet.to_string(),
            s.len().to_string(),
            fmt_f(s.quantile(0.25).unwrap_or(0.0)),
            fmt_f(s.median().unwrap_or(0.0)),
            fmt_f(s.quantile(0.75).unwrap_or(0.0)),
            hb_stats::fmt_pct(1.0 - ecdf.eval(0.5)),
        ]);
        metrics.push((format!("median_{facet}"), s.median().unwrap_or(0.0)));
        metrics.push((format!("share_over_half_{facet}"), 1.0 - ecdf.eval(0.5)));
    }
    // Pooled share over 0.5 CPM (paper: >20%).
    let all: Vec<f64> = by_facet.values().flatten().copied().collect();
    let pooled = Ecdf::from_iter(all.iter().copied());
    metrics.push(("share_over_half_all".into(), 1.0 - pooled.eval(0.5)));
    FigureReport {
        id: "F22".into(),
        title: "Bid prices per HB facet".into(),
        paper_expectation:
            "client-side draws the highest prices; >20% of bids above 0.5 CPM; baseline-user prices low"
                .into(),
        table,
        metrics,
        notes: vec!["prices are for clean-profile (baseline) users".into()],
    }
}

/// Fig. 23: bid prices per ad-slot size (x-axis sorted by area).
pub fn f23_price_by_size(ix: &DatasetIndex) -> FigureReport {
    // Group on cheap symbols, then order by resolved size name to match
    // the original BTreeMap<String, _> iteration.
    let mut by_size: HashMap<Symbol, Vec<f64>> = HashMap::new();
    for (row, &cpm) in ix.b_cpm.iter().enumerate() {
        let size = ix.b_size[row];
        if cpm > 0.0 && !size.is_empty() {
            by_size.entry(size).or_default().push(cpm);
        }
    }
    let mut sized: Vec<(&str, Vec<f64>)> = by_size
        .into_iter()
        .map(|(sym, prices)| (ix.str(sym), prices))
        .collect();
    sized.sort_unstable_by(|a, b| a.0.cmp(b.0));

    let min_obs = 5;
    let mut rows: Vec<(&str, u64, Whisker)> = sized
        .iter()
        .filter(|(_, v)| v.len() >= min_obs)
        .filter_map(|(size, prices)| {
            let area = AdSize::parse(size).map(|s| s.area()).unwrap_or(0);
            Whisker::from_iter(prices.iter().copied()).map(|w| (*size, area, w))
        })
        .collect();
    rows.sort_by_key(|(_, area, _)| *area);

    let mut table = Table::new(
        "Fig. 23 — bid prices per ad size (sorted by area)",
        &["size", "n", "p25", "median", "p75"],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (size, _, w) in &rows {
        table.row(vec![
            size.to_string(),
            w.n.to_string(),
            fmt_f(w.p25),
            fmt_f(w.p50),
            fmt_f(w.p75),
        ]);
    }
    let median_of = |size: &str| {
        rows.iter()
            .find(|(s, _, _)| *s == size)
            .map(|(_, _, w)| w.p50)
            .unwrap_or(0.0)
    };
    FigureReport {
        id: "F23".into(),
        title: "Bid prices per ad-slot size".into(),
        paper_expectation:
            "medians span ~0.001–0.1 CPM; 120x600 dearest; 300x50 cheapest; 300x250 ≈0.03".into(),
        table,
        metrics: vec![
            ("median_300x250".into(), median_of("300x250")),
            ("median_120x600".into(), median_of("120x600")),
            ("median_300x50".into(), median_of("300x50")),
            ("median_320x50".into(), median_of("320x50")),
            ("sizes_measured".into(), rows.len() as f64),
        ],
        notes: vec![],
    }
}

/// Fig. 24: bid prices vs partner popularity rank (bins of 10).
pub fn f24_price_by_popularity(ix: &DatasetIndex) -> FigureReport {
    let rank_of: HashMap<Symbol, usize> = ix
        .partner_popularity
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, i))
        .collect();
    let mut grouped = GroupedSamples::new();
    for (row, &cpm) in ix.b_cpm.iter().enumerate() {
        if cpm > 0.0 {
            if let Some(&rank0) = rank_of.get(&ix.b_partner[row]) {
                grouped.add(rank0 as u64 / 10, cpm);
            }
        }
    }
    let mut table = Table::new(
        "Fig. 24 — bid prices vs partner popularity (bins of 10)",
        &["popularity bin", "n", "p25", "median", "p75", "spread"],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut medians = Vec::new();
    let mut spreads = Vec::new();
    for (bin, w) in grouped.whiskers() {
        table.row(vec![
            format!("{}-{}", bin * 10 + 1, (bin + 1) * 10),
            w.n.to_string(),
            fmt_f(w.p25),
            fmt_f(w.p50),
            fmt_f(w.p75),
            fmt_f(w.box_spread()),
        ]);
        medians.push(w.p50);
        spreads.push(w.box_spread());
    }
    FigureReport {
        id: "F24".into(),
        title: "Bid prices vs Demand Partner popularity".into(),
        paper_expectation: "popular partners bid lower and more consistently".into(),
        table,
        metrics: vec![
            ("top_bin_median".into(), medians.first().copied().unwrap_or(0.0)),
            (
                "bottom_bin_median".into(),
                medians.last().copied().unwrap_or(0.0),
            ),
            ("top_bin_spread".into(), spreads.first().copied().unwrap_or(0.0)),
            (
                "bottom_bin_spread".into(),
                spreads.last().copied().unwrap_or(0.0),
            ),
        ],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn f22_client_side_prices_highest() {
        let ix = small_index();
        let r = f22_price_ecdf(ix);
        let client = r.metric("median_client-side").unwrap_or(0.0);
        let server = r.metric("median_server-side").unwrap_or(0.0);
        assert!(client > 0.0 && server > 0.0);
        assert!(
            client > server,
            "client {client} should exceed server {server}"
        );
    }

    #[test]
    fn f23_size_ordering() {
        let ix = small_index();
        let r = f23_price_by_size(ix);
        let mid = r.metric("median_300x250").unwrap();
        assert!(mid > 0.0);
        // The full-scale ordering (300x250 > 320x50 > 300x50) is asserted
        // against the paper-scale run in EXPERIMENTS.md; at test scale the
        // thin sizes carry few samples, so only a loose sanity bound holds.
        let mobile = r.metric("median_320x50").unwrap_or(0.0);
        if mobile > 0.0 {
            assert!(mid > mobile * 0.3, "300x250 {mid} vs 320x50 {mobile}");
        }
        assert!(r.metric("sizes_measured").unwrap() >= 4.0);
    }

    #[test]
    fn f24_popular_bid_lower() {
        let ix = small_index();
        let r = f24_price_by_popularity(ix);
        let top = r.metric("top_bin_median").unwrap();
        let bottom = r.metric("bottom_bin_median").unwrap();
        if bottom > 0.0 {
            assert!(top < bottom * 1.5, "top {top} vs bottom {bottom}");
        }
    }
}
