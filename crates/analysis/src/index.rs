//! The columnar analysis index: build once per dataset (or incrementally
//! from streamed shard chunks), read by every figure.
//!
//! ## Why
//!
//! The row-oriented [`CrawlDataset`] stores one `VisitRecord` per visit
//! with nested bid/latency/slot vectors. Every figure used to re-walk
//! that structure — visiting ~20 pointer-chasing fields to extract the
//! two or three columns it actually needed, and re-deriving the same
//! per-site partner unions and popularity rankings up to five times per
//! report run. [`DatasetIndex`] hoists all of that into flat, parallel
//! arrays (struct-of-arrays) plus the shared derived tables, so figure
//! builders become tight scans over contiguous memory.
//!
//! ## Two ways to build
//!
//! * [`DatasetIndex::build`] performs **one** pass over a materialized
//!   dataset; symbols already live in the campaign interner, which the
//!   index shares by `Arc` — no strings are copied.
//! * [`DatasetIndexBuilder`] consumes streamed [`VisitChunk`]s as the
//!   sharded campaign produces them, re-interning chunk-local symbols
//!   into its own table. Figures built this way never need the full row
//!   dataset resident — chunks are folded and dropped one at a time.
//!   Feed chunks in `(day, shard, seq)` order (what
//!   [`run_campaign_streamed`](hb_crawler::run_campaign_streamed) emits)
//!   and the resulting figures are byte-identical to the
//!   dataset-then-index path.
//!
//! ## Contract: build once, read many
//!
//! * The index is immutable after build; share it freely (`Sync`, fully
//!   owned — no borrow of the dataset remains).
//! * Figure builders take `&DatasetIndex` and must not re-scan
//!   `ds.visits`; everything order-sensitive (site tables sorted by
//!   domain, partner tables sorted by name, popularity sorted by count
//!   desc / name asc) is precomputed here so ported figures stay
//!   byte-identical to their row-scan ancestors.
//!
//! Every column below is consumed by at least one figure builder — when a
//! figure stops needing a column, delete it here too; `DatasetIndex::build`
//! cost (tracked by the `figure/INDEX_build` bench) is paid per column.
//!
//! Column groups, all parallel within their group:
//!
//! | group | arrays | one row per |
//! |---|---|---|
//! | HB visits | `v_*` | visit with `hb_detected` |
//! | day-0 visits | `d0_*` | visit with `day == 0` (HB or not) |
//! | bids | `b_*` | detected bid in an HB visit |
//! | latency observations | `l_*` | partner latency sample |
//! | slot decisions | `s_*` | slot decision in an HB visit |
//! | ground truth | `t_*` | truth record with a measured latency |

use hb_core::{DetectedFacet, Interner, Symbol, VisitView};
use hb_crawler::{CrawlDataset, TruthRecord, VisitChunk};
use std::collections::HashMap;
use std::sync::Arc;

/// One HB site (distinct domain) with its cross-visit aggregates.
#[derive(Clone, Debug)]
pub struct SiteRow {
    /// Site domain.
    pub domain: Symbol,
    /// Union of partner names over all visits, sorted by resolved name.
    pub partners: Vec<Symbol>,
    /// Every measured per-visit HB latency of this site, in visit order.
    pub latencies: Vec<f64>,
}

/// Columnar view over one campaign. See the module docs for the
/// build-once/read-many contract.
pub struct DatasetIndex {
    /// The interner every symbol column resolves against.
    pub strings: Arc<Interner>,
    /// Number of sites in the crawled universe.
    pub n_sites: u32,
    /// Number of crawl days (excluding the day-0 sweep).
    pub n_days: u32,

    // --- HB-visit columns (one row per hb_detected visit) -----------------
    /// Site rank.
    pub v_rank: Vec<u32>,
    /// Crawl day.
    pub v_day: Vec<u32>,
    /// Facet verdict.
    pub v_facet: Vec<Option<DetectedFacet>>,
    /// Total HB latency ms (`NaN` when unmeasured).
    pub v_latency: Vec<f64>,
    /// Slots auctioned.
    pub v_slots_auctioned: Vec<u32>,
    /// Number of bids.
    pub v_n_bids: Vec<u32>,
    /// Number of late bids.
    pub v_n_late: Vec<u32>,
    /// Bid/ad requests lost to network faults.
    pub v_bids_dropped: Vec<u32>,
    /// Deadline-triggered retries issued.
    pub v_retries: Vec<u32>,
    /// Demand sources given up on after deadline/retry exhaustion.
    pub v_timed_out: Vec<u32>,
    /// Passback / house-ad fill after total demand failure.
    pub v_passback: Vec<bool>,

    // --- day-0 sweep columns (every visit, HB or not) ---------------------
    /// Site rank.
    pub d0_rank: Vec<u32>,
    /// Detector verdict.
    pub d0_hb: Vec<bool>,
    /// Facet of detected sites (`None` otherwise).
    pub d0_facet: Vec<Option<DetectedFacet>>,

    // --- bid columns ------------------------------------------------------
    /// Row index into the HB-visit columns.
    pub b_visit: Vec<u32>,
    /// Bidder code.
    pub b_bidder: Vec<Symbol>,
    /// Partner display name.
    pub b_partner: Vec<Symbol>,
    /// Size string.
    pub b_size: Vec<Symbol>,
    /// CPM price.
    pub b_cpm: Vec<f64>,

    // --- partner latency observation columns ------------------------------
    /// Partner display name.
    pub l_partner: Vec<Symbol>,
    /// Late flag.
    pub l_late: Vec<bool>,

    // --- slot decision columns --------------------------------------------
    /// Row index into the HB-visit columns.
    pub s_visit: Vec<u32>,
    /// Size string.
    pub s_size: Vec<Symbol>,

    // --- ground-truth latency columns (waterfall baseline, X1) ------------
    /// Measured HB latency of every truth record with an HB facet, in
    /// truth order.
    pub t_hb_latency: Vec<f64>,
    /// Measured waterfall fill latency of every facet-less truth record,
    /// in truth order.
    pub t_wf_latency: Vec<f64>,

    // --- derived tables ---------------------------------------------------
    /// Distinct HB sites sorted by domain name.
    pub sites: Vec<SiteRow>,
    /// Partner popularity `(name, distinct sites)`, count desc / name asc.
    pub partner_popularity: Vec<(Symbol, usize)>,
    /// Per-partner latency samples, sorted by partner name; samples keep
    /// visit order.
    pub partner_latency: Vec<(Symbol, Vec<f64>)>,
    /// Lookup from partner symbol to its `partner_latency` row.
    pub partner_latency_by_sym: HashMap<Symbol, u32>,
}

/// Symbol-space-agnostic accumulation state shared by the one-shot and
/// incremental builders.
#[derive(Default)]
struct IndexAccum {
    v_rank: Vec<u32>,
    v_day: Vec<u32>,
    v_facet: Vec<Option<DetectedFacet>>,
    v_latency: Vec<f64>,
    v_slots_auctioned: Vec<u32>,
    v_n_bids: Vec<u32>,
    v_n_late: Vec<u32>,
    v_bids_dropped: Vec<u32>,
    v_retries: Vec<u32>,
    v_timed_out: Vec<u32>,
    v_passback: Vec<bool>,
    d0_rank: Vec<u32>,
    d0_hb: Vec<bool>,
    d0_facet: Vec<Option<DetectedFacet>>,
    b_visit: Vec<u32>,
    b_bidder: Vec<Symbol>,
    b_partner: Vec<Symbol>,
    b_size: Vec<Symbol>,
    b_cpm: Vec<f64>,
    l_partner: Vec<Symbol>,
    l_late: Vec<bool>,
    s_visit: Vec<u32>,
    s_size: Vec<Symbol>,
    t_hb_latency: Vec<f64>,
    t_wf_latency: Vec<f64>,
    site_rows: HashMap<Symbol, SiteRow>,
    partner_samples: HashMap<Symbol, Vec<f64>>,
}

impl IndexAccum {
    /// Fold one visit; `map` migrates symbols into the index's symbol
    /// space (identity when the interner is shared).
    fn push_visit(&mut self, v: VisitView<'_>, map: &mut dyn FnMut(Symbol) -> Symbol) {
        if v.day == 0 {
            self.d0_rank.push(v.rank);
            self.d0_hb.push(v.hb_detected);
            self.d0_facet.push(v.facet);
        }
        if !v.hb_detected {
            return;
        }
        let vrow = self.v_rank.len() as u32;
        self.v_rank.push(v.rank);
        self.v_day.push(v.day);
        self.v_facet.push(v.facet);
        self.v_latency.push(v.hb_latency_ms.unwrap_or(f64::NAN));
        self.v_slots_auctioned.push(v.slots_auctioned);
        self.v_n_bids.push(v.bids.len() as u32);
        self.v_n_late.push(v.late_bids() as u32);
        self.v_bids_dropped.push(v.bids_dropped);
        self.v_retries.push(v.retries);
        self.v_timed_out.push(v.timed_out_partners);
        self.v_passback.push(v.passback_served);

        let domain = map(v.domain);
        let site = self.site_rows.entry(domain).or_insert_with(|| SiteRow {
            domain,
            partners: Vec::new(),
            latencies: Vec::new(),
        });
        for p in v.partners {
            let p = map(*p);
            if !site.partners.contains(&p) {
                site.partners.push(p);
            }
        }
        if let Some(lat) = v.hb_latency_ms {
            site.latencies.push(lat);
        }

        for b in v.bids {
            self.b_visit.push(vrow);
            self.b_bidder.push(map(b.bidder_code));
            self.b_partner.push(map(b.partner_name));
            self.b_size.push(map(b.size));
            self.b_cpm.push(b.cpm);
        }
        for pl in v.partner_latencies {
            let partner = map(pl.partner_name);
            self.l_partner.push(partner);
            self.l_late.push(pl.late);
            self.partner_samples
                .entry(partner)
                .or_default()
                .push(pl.latency_ms);
        }
        for s in v.slots {
            self.s_visit.push(vrow);
            self.s_size.push(map(s.size));
        }
    }

    /// Fold one ground-truth record (only its latency columns are kept).
    fn push_truth(&mut self, t: &TruthRecord) {
        if t.facet != "none" {
            if let Some(ms) = t.hb_latency_ms {
                self.t_hb_latency.push(ms);
            }
        } else if let Some(ms) = t.waterfall_latency_ms {
            self.t_wf_latency.push(ms);
        }
    }

    /// Sort the derived tables and assemble the immutable index.
    fn finish(self, strings: Arc<Interner>, n_sites: u32, n_days: u32) -> DatasetIndex {
        // Sites sorted by domain name; partner sets sorted by name.
        let mut sites: Vec<SiteRow> = self.site_rows.into_values().collect();
        for site in &mut sites {
            site.partners
                .sort_unstable_by(|a, b| strings.resolve(*a).cmp(strings.resolve(*b)));
        }
        sites.sort_unstable_by(|a, b| {
            strings.resolve(a.domain).cmp(strings.resolve(b.domain))
        });

        // Partner popularity: distinct sites per partner, from the sorted
        // site table; ranked count desc, name asc.
        let mut pop: HashMap<Symbol, usize> = HashMap::new();
        for site in &sites {
            for p in &site.partners {
                *pop.entry(*p).or_insert(0) += 1;
            }
        }
        let mut partner_popularity: Vec<(Symbol, usize)> = pop.into_iter().collect();
        partner_popularity.sort_unstable_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| strings.resolve(a.0).cmp(strings.resolve(b.0)))
        });

        // Per-partner latency samples sorted by name, with a reverse map.
        let mut partner_latency: Vec<(Symbol, Vec<f64>)> =
            self.partner_samples.into_iter().collect();
        partner_latency
            .sort_unstable_by(|a, b| strings.resolve(a.0).cmp(strings.resolve(b.0)));
        let partner_latency_by_sym = partner_latency
            .iter()
            .enumerate()
            .map(|(i, (sym, _))| (*sym, i as u32))
            .collect();

        DatasetIndex {
            strings,
            n_sites,
            n_days,
            v_rank: self.v_rank,
            v_day: self.v_day,
            v_facet: self.v_facet,
            v_latency: self.v_latency,
            v_slots_auctioned: self.v_slots_auctioned,
            v_n_bids: self.v_n_bids,
            v_n_late: self.v_n_late,
            v_bids_dropped: self.v_bids_dropped,
            v_retries: self.v_retries,
            v_timed_out: self.v_timed_out,
            v_passback: self.v_passback,
            d0_rank: self.d0_rank,
            d0_hb: self.d0_hb,
            d0_facet: self.d0_facet,
            b_visit: self.b_visit,
            b_bidder: self.b_bidder,
            b_partner: self.b_partner,
            b_size: self.b_size,
            b_cpm: self.b_cpm,
            l_partner: self.l_partner,
            l_late: self.l_late,
            s_visit: self.s_visit,
            s_size: self.s_size,
            t_hb_latency: self.t_hb_latency,
            t_wf_latency: self.t_wf_latency,
            sites,
            partner_popularity,
            partner_latency,
            partner_latency_by_sym,
        }
    }
}

impl DatasetIndex {
    /// Build the index in one pass over `ds` (plus derived-table sorts).
    /// The campaign interner is shared, not copied.
    pub fn build(ds: &CrawlDataset) -> DatasetIndex {
        let mut accum = IndexAccum::default();
        let mut identity = |sym: Symbol| sym;
        for v in &ds.visits {
            accum.push_visit(VisitView::from(v), &mut identity);
        }
        for t in &ds.truths {
            accum.push_truth(t);
        }
        accum.finish(ds.strings.clone(), ds.n_sites, ds.n_days)
    }

    /// Resolve a symbol against the index interner.
    pub fn str(&self, sym: Symbol) -> &str {
        self.strings.resolve(sym)
    }

    /// Number of HB-visit rows.
    pub fn n_hb_visits(&self) -> usize {
        self.v_rank.len()
    }

    /// Number of distinct HB sites.
    pub fn n_hb_sites(&self) -> usize {
        self.sites.len()
    }

    /// Latency samples for one partner, if any were observed.
    pub fn latency_samples_of(&self, partner: Symbol) -> Option<&[f64]> {
        self.partner_latency_by_sym
            .get(&partner)
            .map(|&i| &self.partner_latency[i as usize].1[..])
    }
}

/// Incremental index construction from streamed shard chunks.
///
/// Chunks are folded in arrival order and can be dropped immediately —
/// the builder keeps only the columnar state, never the row records, so
/// peak memory for a figures run is the index itself plus one in-flight
/// chunk.
pub struct DatasetIndexBuilder {
    strings: Interner,
    n_sites: u32,
    n_days: u32,
    accum: IndexAccum,
}

impl DatasetIndexBuilder {
    /// Start a builder for a campaign over `n_sites` × `n_days`.
    pub fn new(n_sites: u32, n_days: u32) -> DatasetIndexBuilder {
        DatasetIndexBuilder {
            strings: Interner::new(),
            n_sites,
            n_days,
            accum: IndexAccum::default(),
        }
    }

    /// Fold one chunk: visits are appended in chunk order with their
    /// symbols re-interned from the chunk-local table into the builder's.
    pub fn push_chunk(&mut self, chunk: &VisitChunk) {
        let strings = &mut self.strings;
        let local = &chunk.strings;
        let mut map = |sym: Symbol| strings.intern(local.resolve(sym));
        for v in chunk.visits.iter() {
            self.accum.push_visit(v, &mut map);
        }
        for t in &chunk.truths {
            self.accum.push_truth(t);
        }
    }

    /// Number of visits folded so far (HB visits only appear in `v_*`
    /// columns, but day-0 rows count every sweep visit).
    pub fn n_hb_visits(&self) -> usize {
        self.accum.v_rank.len()
    }

    /// Seal the index.
    pub fn finish(self) -> DatasetIndex {
        self.accum
            .finish(Arc::new(self.strings), self.n_sites, self.n_days)
    }
}

#[cfg(test)]
mod tests {
    use crate::test_fixtures::{small_dataset, small_index};

    #[test]
    fn columns_are_consistent() {
        let ix = small_index();
        let n = ix.n_hb_visits();
        assert!(n > 100);
        assert_eq!(ix.v_latency.len(), n);
        assert_eq!(ix.v_n_bids.len(), n);
        assert_eq!(ix.b_visit.len(), ix.b_cpm.len());
        assert_eq!(ix.l_partner.len(), ix.l_late.len());
        assert_eq!(ix.s_visit.len(), ix.s_size.len());
        // Bid rows point at valid visit rows.
        assert!(ix.b_visit.iter().all(|&v| (v as usize) < n));
        // Totals line up with the row-oriented accessors.
        let ds = small_dataset();
        let total_bids: u32 = ix.v_n_bids.iter().sum();
        assert_eq!(total_bids as usize, ix.b_visit.len());
        assert_eq!(total_bids as u64, ds.total_bids());
        assert_eq!(ix.n_sites, ds.n_sites);
        assert_eq!(ix.n_days, ds.n_days);
    }

    #[test]
    fn sites_sorted_by_domain() {
        let ix = small_index();
        assert!(ix.n_hb_sites() > 10);
        let domains: Vec<&str> = ix.sites.iter().map(|s| ix.str(s.domain)).collect();
        let mut sorted = domains.clone();
        sorted.sort_unstable();
        assert_eq!(domains, sorted);
        assert_eq!(ix.n_hb_sites(), small_dataset().hb_domains().len());
    }

    #[test]
    fn popularity_ranked_desc() {
        let ix = small_index();
        for w in ix.partner_popularity.windows(2) {
            assert!(w[0].1 >= w[1].1);
            if w[0].1 == w[1].1 {
                assert!(ix.str(w[0].0) < ix.str(w[1].0));
            }
        }
    }

    #[test]
    fn partner_latency_lookup_consistent() {
        let ix = small_index();
        assert!(!ix.partner_latency.is_empty());
        for (sym, samples) in &ix.partner_latency {
            assert_eq!(ix.latency_samples_of(*sym).unwrap(), &samples[..]);
        }
        let total: usize = ix.partner_latency.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, ix.l_partner.len());
    }

    #[test]
    fn truth_latency_columns_match_dataset() {
        let ix = small_index();
        let ds = small_dataset();
        let hb: Vec<f64> = ds
            .truths
            .iter()
            .filter(|t| t.facet != "none")
            .filter_map(|t| t.hb_latency_ms)
            .collect();
        let wf: Vec<f64> = ds
            .truths
            .iter()
            .filter(|t| t.facet == "none")
            .filter_map(|t| t.waterfall_latency_ms)
            .collect();
        assert_eq!(ix.t_hb_latency, hb);
        assert_eq!(ix.t_wf_latency, wf);
    }
}
