//! The columnar analysis index: build once per dataset, read by every
//! figure.
//!
//! ## Why
//!
//! The row-oriented [`CrawlDataset`] stores one `VisitRecord` per visit
//! with nested bid/latency/slot vectors. Every figure used to re-walk
//! that structure — visiting ~20 pointer-chasing fields to extract the
//! two or three columns it actually needed, and re-deriving the same
//! per-site partner unions and popularity rankings up to five times per
//! report run. [`DatasetIndex`] hoists all of that into flat, parallel
//! arrays (struct-of-arrays) plus the shared derived tables, so figure
//! builders become tight scans over contiguous memory.
//!
//! ## Contract: build once, read many
//!
//! * [`DatasetIndex::build`] performs **one** pass over the dataset (plus
//!   sorts for the derived tables) and borrows the dataset immutably; it
//!   never mutates or copies record strings — symbols are resolved
//!   against `ds.strings` on demand.
//! * Figure builders take `&DatasetIndex` and must not re-scan
//!   `ds.visits`; everything order-sensitive (site tables sorted by
//!   domain, partner tables sorted by name, popularity sorted by count
//!   desc / name asc) is precomputed here so ported figures stay
//!   byte-identical to their row-scan ancestors.
//! * The index is immutable after build; share it freely (`&` across
//!   threads is fine — it is `Sync` like the dataset).
//!
//! Every column below is consumed by at least one figure builder — when a
//! figure stops needing a column, delete it here too; `DatasetIndex::build`
//! cost (tracked by the `figure/INDEX_build` bench) is paid per column.
//!
//! Column groups, all parallel within their group:
//!
//! | group | arrays | one row per |
//! |---|---|---|
//! | HB visits | `v_*` | visit with `hb_detected` |
//! | day-0 visits | `d0_*` | visit with `day == 0` (HB or not) |
//! | bids | `b_*` | detected bid in an HB visit |
//! | latency observations | `l_*` | partner latency sample |
//! | slot decisions | `s_*` | slot decision in an HB visit |

use hb_core::{DetectedFacet, Symbol};
use hb_crawler::CrawlDataset;
use std::collections::HashMap;

/// One HB site (distinct domain) with its cross-visit aggregates.
#[derive(Clone, Debug)]
pub struct SiteRow {
    /// Site domain.
    pub domain: Symbol,
    /// Union of partner names over all visits, sorted by resolved name.
    pub partners: Vec<Symbol>,
    /// Every measured per-visit HB latency of this site, in visit order.
    pub latencies: Vec<f64>,
}

/// Columnar view over one [`CrawlDataset`]. See the module docs for the
/// build-once/read-many contract.
pub struct DatasetIndex<'a> {
    /// The indexed dataset (strings resolve against `ds.strings`).
    pub ds: &'a CrawlDataset,

    // --- HB-visit columns (one row per hb_detected visit) -----------------
    /// Site rank.
    pub v_rank: Vec<u32>,
    /// Crawl day.
    pub v_day: Vec<u32>,
    /// Facet verdict.
    pub v_facet: Vec<Option<DetectedFacet>>,
    /// Total HB latency ms (`NaN` when unmeasured).
    pub v_latency: Vec<f64>,
    /// Slots auctioned.
    pub v_slots_auctioned: Vec<u32>,
    /// Number of bids.
    pub v_n_bids: Vec<u32>,
    /// Number of late bids.
    pub v_n_late: Vec<u32>,

    // --- day-0 sweep columns (every visit, HB or not) ---------------------
    /// Site rank.
    pub d0_rank: Vec<u32>,
    /// Detector verdict.
    pub d0_hb: Vec<bool>,
    /// Facet of detected sites (`None` otherwise).
    pub d0_facet: Vec<Option<DetectedFacet>>,

    // --- bid columns ------------------------------------------------------
    /// Row index into the HB-visit columns.
    pub b_visit: Vec<u32>,
    /// Bidder code.
    pub b_bidder: Vec<Symbol>,
    /// Partner display name.
    pub b_partner: Vec<Symbol>,
    /// Size string.
    pub b_size: Vec<Symbol>,
    /// CPM price.
    pub b_cpm: Vec<f64>,

    // --- partner latency observation columns ------------------------------
    /// Partner display name.
    pub l_partner: Vec<Symbol>,
    /// Late flag.
    pub l_late: Vec<bool>,

    // --- slot decision columns --------------------------------------------
    /// Row index into the HB-visit columns.
    pub s_visit: Vec<u32>,
    /// Size string.
    pub s_size: Vec<Symbol>,

    // --- derived tables ---------------------------------------------------
    /// Distinct HB sites sorted by domain name.
    pub sites: Vec<SiteRow>,
    /// Partner popularity `(name, distinct sites)`, count desc / name asc.
    pub partner_popularity: Vec<(Symbol, usize)>,
    /// Per-partner latency samples, sorted by partner name; samples keep
    /// visit order.
    pub partner_latency: Vec<(Symbol, Vec<f64>)>,
    /// Lookup from partner symbol to its `partner_latency` row.
    pub partner_latency_by_sym: HashMap<Symbol, u32>,
}

impl<'a> DatasetIndex<'a> {
    /// Build the index in one pass over `ds` (plus derived-table sorts).
    pub fn build(ds: &'a CrawlDataset) -> DatasetIndex<'a> {
        let mut ix = DatasetIndex {
            ds,
            v_rank: Vec::new(),
            v_day: Vec::new(),
            v_facet: Vec::new(),
            v_latency: Vec::new(),
            v_slots_auctioned: Vec::new(),
            v_n_bids: Vec::new(),
            v_n_late: Vec::new(),
            d0_rank: Vec::new(),
            d0_hb: Vec::new(),
            d0_facet: Vec::new(),
            b_visit: Vec::new(),
            b_bidder: Vec::new(),
            b_partner: Vec::new(),
            b_size: Vec::new(),
            b_cpm: Vec::new(),
            l_partner: Vec::new(),
            l_late: Vec::new(),
            s_visit: Vec::new(),
            s_size: Vec::new(),
            sites: Vec::new(),
            partner_popularity: Vec::new(),
            partner_latency: Vec::new(),
            partner_latency_by_sym: HashMap::new(),
        };

        // Per-domain accumulation (keyed by symbol; sorted by name below).
        let mut site_rows: HashMap<Symbol, SiteRow> = HashMap::new();
        let mut partner_samples: HashMap<Symbol, Vec<f64>> = HashMap::new();

        for v in &ds.visits {
            if v.day == 0 {
                ix.d0_rank.push(v.rank);
                ix.d0_hb.push(v.hb_detected);
                ix.d0_facet.push(v.facet);
            }
            if !v.hb_detected {
                continue;
            }
            let vrow = ix.v_rank.len() as u32;
            ix.v_rank.push(v.rank);
            ix.v_day.push(v.day);
            ix.v_facet.push(v.facet);
            ix.v_latency.push(v.hb_latency_ms.unwrap_or(f64::NAN));
            ix.v_slots_auctioned.push(v.slots_auctioned);
            ix.v_n_bids.push(v.bids.len() as u32);
            ix.v_n_late.push(v.late_bids() as u32);

            let site = site_rows.entry(v.domain).or_insert_with(|| SiteRow {
                domain: v.domain,
                partners: Vec::new(),
                latencies: Vec::new(),
            });
            for p in &v.partners {
                if !site.partners.contains(p) {
                    site.partners.push(*p);
                }
            }
            if let Some(lat) = v.hb_latency_ms {
                site.latencies.push(lat);
            }

            for b in &v.bids {
                ix.b_visit.push(vrow);
                ix.b_bidder.push(b.bidder_code);
                ix.b_partner.push(b.partner_name);
                ix.b_size.push(b.size);
                ix.b_cpm.push(b.cpm);
            }
            for pl in &v.partner_latencies {
                ix.l_partner.push(pl.partner_name);
                ix.l_late.push(pl.late);
                partner_samples
                    .entry(pl.partner_name)
                    .or_default()
                    .push(pl.latency_ms);
            }
            for s in &v.slots {
                ix.s_visit.push(vrow);
                ix.s_size.push(s.size);
            }
        }

        // Sites sorted by domain name; partner sets sorted by name.
        let mut sites: Vec<SiteRow> = site_rows.into_values().collect();
        for site in &mut sites {
            site.partners
                .sort_unstable_by(|a, b| ds.str(*a).cmp(ds.str(*b)));
        }
        sites.sort_unstable_by(|a, b| ds.str(a.domain).cmp(ds.str(b.domain)));
        ix.sites = sites;

        // Partner popularity: distinct sites per partner, from the sorted
        // site table; ranked count desc, name asc.
        let mut pop: HashMap<Symbol, usize> = HashMap::new();
        for site in &ix.sites {
            for p in &site.partners {
                *pop.entry(*p).or_insert(0) += 1;
            }
        }
        let mut popularity: Vec<(Symbol, usize)> = pop.into_iter().collect();
        popularity.sort_unstable_by(|a, b| {
            b.1.cmp(&a.1).then_with(|| ds.str(a.0).cmp(ds.str(b.0)))
        });
        ix.partner_popularity = popularity;

        // Per-partner latency samples sorted by name, with a reverse map.
        let mut partner_latency: Vec<(Symbol, Vec<f64>)> = partner_samples.into_iter().collect();
        partner_latency.sort_unstable_by(|a, b| ds.str(a.0).cmp(ds.str(b.0)));
        ix.partner_latency_by_sym = partner_latency
            .iter()
            .enumerate()
            .map(|(i, (sym, _))| (*sym, i as u32))
            .collect();
        ix.partner_latency = partner_latency;

        ix
    }

    /// Resolve a symbol against the dataset interner.
    pub fn str(&self, sym: Symbol) -> &'a str {
        self.ds.strings.resolve(sym)
    }

    /// Number of HB-visit rows.
    pub fn n_hb_visits(&self) -> usize {
        self.v_rank.len()
    }

    /// Number of distinct HB sites.
    pub fn n_hb_sites(&self) -> usize {
        self.sites.len()
    }

    /// Latency samples for one partner, if any were observed.
    pub fn latency_samples_of(&self, partner: Symbol) -> Option<&[f64]> {
        self.partner_latency_by_sym
            .get(&partner)
            .map(|&i| &self.partner_latency[i as usize].1[..])
    }
}

#[cfg(test)]
mod tests {
    use crate::test_fixtures::small_index;

    #[test]
    fn columns_are_consistent() {
        let ix = small_index();
        let n = ix.n_hb_visits();
        assert!(n > 100);
        assert_eq!(ix.v_latency.len(), n);
        assert_eq!(ix.v_n_bids.len(), n);
        assert_eq!(ix.b_visit.len(), ix.b_cpm.len());
        assert_eq!(ix.l_partner.len(), ix.l_late.len());
        assert_eq!(ix.s_visit.len(), ix.s_size.len());
        // Bid rows point at valid visit rows.
        assert!(ix.b_visit.iter().all(|&v| (v as usize) < n));
        // Totals line up with the row-oriented accessors.
        let total_bids: u32 = ix.v_n_bids.iter().sum();
        assert_eq!(total_bids as usize, ix.b_visit.len());
        assert_eq!(total_bids as u64, ix.ds.total_bids());
    }

    #[test]
    fn sites_sorted_by_domain() {
        let ix = small_index();
        assert!(ix.n_hb_sites() > 10);
        let domains: Vec<&str> = ix.sites.iter().map(|s| ix.str(s.domain)).collect();
        let mut sorted = domains.clone();
        sorted.sort_unstable();
        assert_eq!(domains, sorted);
        assert_eq!(ix.n_hb_sites(), ix.ds.hb_domains().len());
    }

    #[test]
    fn popularity_ranked_desc() {
        let ix = small_index();
        for w in ix.partner_popularity.windows(2) {
            assert!(w[0].1 >= w[1].1);
            if w[0].1 == w[1].1 {
                assert!(ix.str(w[0].0) < ix.str(w[1].0));
            }
        }
    }

    #[test]
    fn partner_latency_lookup_consistent() {
        let ix = small_index();
        assert!(!ix.partner_latency.is_empty());
        for (sym, samples) in &ix.partner_latency {
            assert_eq!(ix.latency_samples_of(*sym).unwrap(), &samples[..]);
        }
        let total: usize = ix.partner_latency.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, ix.l_partner.len());
    }
}
