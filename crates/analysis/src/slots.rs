//! Ad-slot analyses: slots per site per facet (Fig. 19), latency vs slot
//! count (Fig. 20), size popularity per facet (Fig. 21).
//!
//! All builders read the columnar [`DatasetIndex`] slot/visit columns.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_stats::{fmt_ms, fmt_pct, Align, Counter, GroupedSamples, Samples, Table};
use std::collections::BTreeMap;

/// Fig. 19: ECDF of auctioned ad-slots per website, per facet.
pub fn f19_slots_ecdf(ix: &DatasetIndex) -> FigureReport {
    let mut per_facet: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for (row, &day) in ix.v_day.iter().enumerate() {
        if day != 0 {
            continue;
        }
        if let Some(f) = ix.v_facet[row] {
            per_facet
                .entry(f.label())
                .or_default()
                .push(ix.v_slots_auctioned[row] as f64);
        }
    }
    let mut table = Table::new(
        "Fig. 19 — auctioned ad-slots per site, per facet",
        &["facet", "n", "median", "p90", "share > 20"],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut metrics = Vec::new();
    let mut all_counts = Vec::new();
    for (facet, counts) in &per_facet {
        let s = Samples::from_iter(counts.iter().copied());
        let median = s.median().unwrap_or(0.0);
        let p90 = s.quantile(0.9).unwrap_or(0.0);
        let over20 = s.frac_above(20.0);
        table.row(vec![
            facet.to_string(),
            s.len().to_string(),
            format!("{median:.0}"),
            format!("{p90:.0}"),
            fmt_pct(over20),
        ]);
        metrics.push((format!("median_{facet}"), median));
        metrics.push((format!("p90_{facet}"), p90));
        all_counts.extend(counts.iter().copied());
    }
    let all = Samples::from_iter(all_counts);
    metrics.push(("share_over_20".into(), all.frac_above(20.0)));
    FigureReport {
        id: "F19".into(),
        title: "Auctioned ad-slots per website per facet".into(),
        paper_expectation: "medians 2–6; p90 5–11; ~3% of sites auction >20 slots".into(),
        table,
        metrics,
        notes: vec![
            ">20-slot sites duplicate units per device class (§5.3 oddity)".into(),
        ],
    }
}

/// Fig. 20: latency vs number of auctioned slots.
pub fn f20_latency_vs_slots(ix: &DatasetIndex) -> FigureReport {
    let mut grouped = GroupedSamples::new();
    for (row, &lat) in ix.v_latency.iter().enumerate() {
        if !lat.is_nan() && ix.v_slots_auctioned[row] >= 1 {
            grouped.add(ix.v_slots_auctioned[row].min(15) as u64, lat);
        }
    }
    let mut table = Table::new(
        "Fig. 20 — HB latency vs auctioned ad-slots",
        &["slots", "n", "p25", "median", "p75"],
    )
    .with_aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (k, w) in grouped.whiskers() {
        table.row(vec![
            k.to_string(),
            w.n.to_string(),
            fmt_ms(w.p25),
            fmt_ms(w.p50),
            fmt_ms(w.p75),
        ]);
    }
    let med = |k: u64| grouped.get(k).and_then(|s| s.median()).unwrap_or(0.0);
    let med13 = Samples::from_iter(
        (1..=3).flat_map(|k| {
            grouped
                .get(k)
                .map(|s| s.sorted().to_vec())
                .unwrap_or_default()
        }),
    )
    .median()
    .unwrap_or(0.0);
    let med35 = Samples::from_iter(
        (3..=5).flat_map(|k| {
            grouped
                .get(k)
                .map(|s| s.sorted().to_vec())
                .unwrap_or_default()
        }),
    )
    .median()
    .unwrap_or(0.0);
    FigureReport {
        id: "F20".into(),
        title: "Latency vs number of auctioned ad-slots".into(),
        paper_expectation: "1–3 slots → 0.30–0.57 s median; 3–5 slots → 0.57–0.92 s".into(),
        table,
        metrics: vec![
            ("median_1to3_ms".into(), med13),
            ("median_3to5_ms".into(), med35),
            ("median_1_ms".into(), med(1)),
            ("median_5_ms".into(), med(5)),
        ],
        notes: vec![],
    }
}

/// Fig. 21: most popular ad sizes per facet.
pub fn f21_sizes(ix: &DatasetIndex) -> FigureReport {
    let mut per_facet: BTreeMap<&str, Counter> = BTreeMap::new();
    // Slot decisions carry the authoritative sizes; bids add more.
    for (row, size) in ix.s_size.iter().enumerate() {
        let Some(f) = ix.v_facet[ix.s_visit[row] as usize] else {
            continue;
        };
        if !size.is_empty() {
            per_facet.entry(f.label()).or_default().add(ix.str(*size));
        }
    }
    for (row, size) in ix.b_size.iter().enumerate() {
        let Some(f) = ix.v_facet[ix.b_visit[row] as usize] else {
            continue;
        };
        if !size.is_empty() {
            per_facet.entry(f.label()).or_default().add(ix.str(*size));
        }
    }
    let mut table = Table::new(
        "Fig. 21 — ad-slot size popularity per facet (top 10)",
        &["facet", "size", "count", "share"],
    )
    .with_aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    let mut metrics = Vec::new();
    for (facet, counter) in &per_facet {
        for (size, count) in counter.top(10) {
            table.row(vec![
                facet.to_string(),
                size.clone(),
                count.to_string(),
                fmt_pct(count as f64 / counter.total().max(1) as f64),
            ]);
        }
        let top = counter.top(2);
        metrics.push((
            format!("{facet}_top_is_300x250"),
            if top.first().map(|(s, _)| s == "300x250").unwrap_or(false) {
                1.0
            } else {
                0.0
            },
        ));
        metrics.push((
            format!("{facet}_300x250_share"),
            counter.share("300x250"),
        ));
    }
    FigureReport {
        id: "F21".into(),
        title: "Portion of ads per HB ad size, per facet".into(),
        paper_expectation: "300x250 tops every facet; 728x90 and 300x600 follow".into(),
        table,
        metrics,
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn f19_medians_in_range() {
        let ix = small_index();
        let r = f19_slots_ecdf(ix);
        for facet in ["client-side", "server-side", "hybrid"] {
            if let Some(m) = r.metric(&format!("median_{facet}")) {
                assert!((1.0..=8.0).contains(&m), "{facet} median {m}");
            }
        }
    }

    #[test]
    fn f20_latency_grows_with_slots() {
        let ix = small_index();
        let r = f20_latency_vs_slots(ix);
        let m13 = r.metric("median_1to3_ms").unwrap();
        let m35 = r.metric("median_3to5_ms").unwrap();
        assert!(m13 > 0.0 && m35 > 0.0);
        assert!(m35 >= m13 * 0.8, "1-3: {m13}, 3-5: {m35}");
    }

    #[test]
    fn f21_medium_rect_dominates() {
        let ix = small_index();
        let r = f21_sizes(ix);
        let dominant: f64 = r
            .metrics
            .iter()
            .filter(|(k, _)| k.ends_with("_top_is_300x250"))
            .map(|(_, v)| *v)
            .sum();
        assert!(dominant >= 2.0, "facets topped by 300x250: {dominant}");
    }
}
