//! Late-bid analyses: the late-fraction ECDF (Fig. 17) and per-partner
//! late rates (Fig. 18).
//!
//! Both builders read the columnar [`DatasetIndex`] visit/latency columns.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_core::Symbol;
use hb_stats::{fmt_pct, Align, Ecdf, Table};
use std::collections::HashMap;

/// Fig. 17: ECDF of the fraction of bids that arrived late, over auctions
/// that had at least one late bid.
pub fn f17_late_ecdf(ix: &DatasetIndex) -> FigureReport {
    let mut fractions = Vec::new();
    let mut late_counts = Vec::new();
    for (row, &late) in ix.v_n_late.iter().enumerate() {
        if late > 0 {
            fractions.push(late as f64 / ix.v_n_bids[row] as f64);
            late_counts.push(late as f64);
        }
    }
    let ecdf = Ecdf::from_iter(fractions.iter().copied());
    let mut table = Table::new(
        "Fig. 17 — late bids / total bids per auction (ECDF, auctions with late bids)",
        &["late fraction", "P[X<=x]"],
    );
    for x in [0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 1.0] {
        table.row(vec![fmt_pct(x), format!("{:.4}", ecdf.eval(x))]);
    }
    let median_fraction = ecdf.inverse(0.5).unwrap_or(0.0);
    let frac_ge80 = 1.0 - ecdf.eval(0.7999);
    let count_ecdf = Ecdf::from_iter(late_counts.iter().copied());
    let share_one = count_ecdf.eval(1.0);
    let share_ge2 = 1.0 - share_one;
    let share_ge4 = 1.0 - count_ecdf.eval(3.999);
    FigureReport {
        id: "F17".into(),
        title: "Portion of late bids per auction".into(),
        paper_expectation:
            "median late fraction ≈50%; 10% of auctions have ≥80% late; 60% have one late bid, 40% ≥2, 20% ≥4"
                .into(),
        table,
        metrics: vec![
            ("median_late_fraction".into(), median_fraction),
            ("share_ge80pct_late".into(), frac_ge80),
            ("share_one_late".into(), share_one),
            ("share_ge2_late".into(), share_ge2),
            ("share_ge4_late".into(), share_ge4),
            ("auctions_with_late".into(), fractions.len() as f64),
        ],
        notes: vec![],
    }
}

/// Fig. 18: percentage of late bids per Demand Partner.
pub fn f18_late_by_partner(ix: &DatasetIndex) -> FigureReport {
    // Use request-level latency observations (they exist for no-bid
    // responses too, matching the paper's "bids sent" framing).
    let mut per_partner: HashMap<Symbol, (u32, u32)> = HashMap::new(); // (late, total)
    for (row, partner) in ix.l_partner.iter().enumerate() {
        let e = per_partner.entry(*partner).or_default();
        e.1 += 1;
        if ix.l_late[row] {
            e.0 += 1;
        }
    }
    let min_obs = 5;
    let mut rates: Vec<(&str, f64, u32)> = per_partner
        .into_iter()
        .filter(|(_, (_, total))| *total >= min_obs)
        .map(|(p, (late, total))| (ix.str(p), late as f64 / total as f64, total))
        .collect();
    rates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then_with(|| a.0.cmp(b.0))
    });

    let mut table = Table::new(
        "Fig. 18 — % of late bids per Demand Partner (top 25)",
        &["partner", "late rate", "responses"],
    )
    .with_aligns(&[Align::Left, Align::Right, Align::Right]);
    for (p, rate, total) in rates.iter().take(25) {
        table.row(vec![p.to_string(), fmt_pct(*rate), total.to_string()]);
    }
    let partners_ge50 = rates.iter().filter(|(_, r, _)| *r >= 0.5).count();
    let max_rate = rates.first().map(|(_, r, _)| *r).unwrap_or(0.0);
    FigureReport {
        id: "F18".into(),
        title: "Late bids per Demand Partner".into(),
        paper_expectation: "21 partners late in ≥50% of their auctions; some lose ~100%".into(),
        table,
        metrics: vec![
            ("partners_ge50pct_late".into(), partners_ge50 as f64),
            ("max_late_rate".into(), max_rate),
            ("partners_measured".into(), rates.len() as f64),
        ],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn f17_fractions_are_valid() {
        let ix = small_index();
        let r = f17_late_ecdf(ix);
        let median = r.metric("median_late_fraction").unwrap();
        assert!((0.0..=1.0).contains(&median));
        assert!(r.metric("auctions_with_late").unwrap() > 0.0);
        let one = r.metric("share_one_late").unwrap();
        let ge2 = r.metric("share_ge2_late").unwrap();
        assert!((one + ge2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f17_misconfigured_sites_drive_high_fractions() {
        let ix = small_index();
        let r = f17_late_ecdf(ix);
        // Misconfigured wrappers lose all their bids, so the upper tail
        // must be populated.
        let ge80 = r.metric("share_ge80pct_late").unwrap();
        assert!(ge80 > 0.02, "share of >=80%-late auctions: {ge80}");
    }

    #[test]
    fn f18_late_prone_partners_surface() {
        let ix = small_index();
        let r = f18_late_by_partner(ix);
        assert!(r.metric("partners_measured").unwrap() > 5.0);
        assert!(
            r.metric("max_late_rate").unwrap() > 0.4,
            "max late rate {:?}",
            r.metric("max_late_rate")
        );
    }
}
