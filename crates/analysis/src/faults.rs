//! Fault-slice figures: how the campaign's auctions behave under the
//! degraded-network scenario axes.
//!
//! Visits are sliced by the fault exposure their ground truth recorded:
//!
//! * **clean** — no drops, no retries, no timeouts (the healthy baseline
//!   inside any campaign);
//! * **degraded** — ambient faults touched the visit (a dropped or
//!   retried request) but every demand source ultimately resolved;
//! * **outage-hit** — at least one demand source was given up on
//!   (deadline/retry exhaustion) or the wrapper fell back to house ads.
//!
//! The builders live outside [`indexed_reports`](crate::registry::indexed_reports)
//! — fault figures describe scenario campaigns, not the paper's tables,
//! so the paper registry keeps its exact report set. The degraded-network
//! example runs one campaign per scenario and renders these side by side.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_stats::{fmt_f, fmt_ms, fmt_pct, Align, Samples, Table};

/// The three fault-exposure slices of a campaign's HB visits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSlice {
    /// No drops, retries or timeouts touched the visit.
    Clean,
    /// Ambient faults touched it, but every demand source resolved.
    Degraded,
    /// A demand source was abandoned, or passback filled the slots.
    OutageHit,
}

impl FaultSlice {
    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            FaultSlice::Clean => "clean",
            FaultSlice::Degraded => "degraded",
            FaultSlice::OutageHit => "outage-hit",
        }
    }

    /// Classify HB-visit row `i` of the index.
    pub fn of(ix: &DatasetIndex, i: usize) -> FaultSlice {
        if ix.v_timed_out[i] > 0 || ix.v_passback[i] {
            FaultSlice::OutageHit
        } else if ix.v_bids_dropped[i] > 0 || ix.v_retries[i] > 0 {
            FaultSlice::Degraded
        } else {
            FaultSlice::Clean
        }
    }

    /// All slices, table order.
    pub const ALL: [FaultSlice; 3] =
        [FaultSlice::Clean, FaultSlice::Degraded, FaultSlice::OutageHit];
}

/// Z1: per-slice auction health — visit share, p50/p95 HB latency,
/// late-bid rate, mean bid CPM and passback rate for each fault slice.
pub fn z01_fault_slices(ix: &DatasetIndex) -> FigureReport {
    let n = ix.n_hb_visits();
    let slice_of: Vec<FaultSlice> = (0..n).map(|i| FaultSlice::of(ix, i)).collect();

    let mut table = Table::new(
        "Z1 — auction health by fault slice",
        &[
            "slice", "visits", "share", "p50 lat", "p95 lat", "late rate", "mean CPM",
            "passback",
        ],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    let mut metrics = Vec::new();
    for slice in FaultSlice::ALL {
        let rows: Vec<usize> = (0..n).filter(|&i| slice_of[i] == slice).collect();
        let visits = rows.len();
        let lat = Samples::from_iter(
            rows.iter()
                .map(|&i| ix.v_latency[i])
                .filter(|l| l.is_finite()),
        );
        let bids: u32 = rows.iter().map(|&i| ix.v_n_bids[i]).sum();
        let late: u32 = rows.iter().map(|&i| ix.v_n_late[i]).sum();
        let late_rate = late as f64 / (bids + late).max(1) as f64;
        // Mean CPM over the slice's bids via the bid->visit join.
        let (mut cpm_sum, mut cpm_n) = (0.0, 0u32);
        for (bi, &vrow) in ix.b_visit.iter().enumerate() {
            if slice_of[vrow as usize] == slice {
                cpm_sum += ix.b_cpm[bi];
                cpm_n += 1;
            }
        }
        let mean_cpm = cpm_sum / cpm_n.max(1) as f64;
        let passbacks = rows.iter().filter(|&&i| ix.v_passback[i]).count();
        let p50 = lat.quantile(0.5).unwrap_or(0.0);
        let p95 = lat.quantile(0.95).unwrap_or(0.0);
        table.row(vec![
            slice.label().into(),
            visits.to_string(),
            fmt_pct(visits as f64 / n.max(1) as f64),
            fmt_ms(p50),
            fmt_ms(p95),
            fmt_pct(late_rate),
            fmt_f(mean_cpm),
            fmt_pct(passbacks as f64 / visits.max(1) as f64),
        ]);
        let key = slice.label().replace('-', "_");
        metrics.push((format!("{key}_visits"), visits as f64));
        metrics.push((format!("{key}_p50_ms"), p50));
        metrics.push((format!("{key}_p95_ms"), p95));
        metrics.push((format!("{key}_late_rate"), late_rate));
        metrics.push((format!("{key}_mean_cpm"), mean_cpm));
    }
    let detected = ix.d0_hb.iter().filter(|&&d| d).count();
    metrics.push((
        "adoption_rate".into(),
        detected as f64 / ix.d0_hb.len().max(1) as f64,
    ));

    FigureReport {
        id: "Z1".into(),
        title: "Auction health by fault slice".into(),
        paper_expectation:
            "robustness extension (not in the paper): degraded/outage slices pay higher \
             latency and lose bids; clean-slice metrics match the healthy campaign"
                .into(),
        table,
        metrics,
        notes: vec![
            "slices classify each HB visit by its ground-truth fault counters".into(),
        ],
    }
}

/// Z2: fault timeline — per-day drop/retry/timeout/passback counters,
/// which makes scheduled outage windows visible as steps in the series.
pub fn z02_fault_timeline(ix: &DatasetIndex) -> FigureReport {
    let n_days = ix.n_days as usize + 1;
    let mut visits = vec![0u32; n_days];
    let mut drops = vec![0u32; n_days];
    let mut retries = vec![0u32; n_days];
    let mut timeouts = vec![0u32; n_days];
    let mut passbacks = vec![0u32; n_days];
    for i in 0..ix.n_hb_visits() {
        let d = ix.v_day[i] as usize;
        if d >= n_days {
            continue;
        }
        visits[d] += 1;
        drops[d] += ix.v_bids_dropped[i];
        retries[d] += ix.v_retries[i];
        timeouts[d] += ix.v_timed_out[i];
        passbacks[d] += u32::from(ix.v_passback[i]);
    }

    let mut table = Table::new(
        "Z2 — fault timeline by crawl day",
        &["day", "visits", "drops", "retries", "timeouts", "passbacks"],
    )
    .with_aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for d in 0..n_days {
        table.row(vec![
            d.to_string(),
            visits[d].to_string(),
            drops[d].to_string(),
            retries[d].to_string(),
            timeouts[d].to_string(),
            passbacks[d].to_string(),
        ]);
    }
    let total_drops: u32 = drops.iter().sum();
    let total_retries: u32 = retries.iter().sum();
    let total_timeouts: u32 = timeouts.iter().sum();
    let total_passbacks: u32 = passbacks.iter().sum();
    let peak_timeout_day = (0..n_days).max_by_key(|&d| timeouts[d]).unwrap_or(0);

    FigureReport {
        id: "Z2".into(),
        title: "Fault timeline by crawl day".into(),
        paper_expectation:
            "robustness extension (not in the paper): scheduled outage windows appear \
             as timeout/passback steps on the affected days only"
                .into(),
        table,
        metrics: vec![
            ("total_drops".into(), total_drops as f64),
            ("total_retries".into(), total_retries as f64),
            ("total_timeouts".into(), total_timeouts as f64),
            ("total_passbacks".into(), total_passbacks as f64),
            ("peak_timeout_day".into(), peak_timeout_day as f64),
        ],
        notes: vec!["day 0 is the adoption sweep".into()],
    }
}

/// Build the fault-slice report family. Deliberately separate from
/// [`indexed_reports`](crate::registry::indexed_reports): these describe
/// scenario campaigns, not the paper's figure set.
pub fn fault_reports(ix: &DatasetIndex) -> Vec<FigureReport> {
    vec![z01_fault_slices(ix), z02_fault_timeline(ix)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn slices_partition_all_hb_visits() {
        let ix = small_index();
        let r = z01_fault_slices(ix);
        let total: f64 = FaultSlice::ALL
            .iter()
            .map(|s| {
                let key = s.label().replace('-', "_");
                r.metric(&format!("{key}_visits")).unwrap()
            })
            .sum();
        assert_eq!(total as usize, ix.n_hb_visits());
        assert!(r.metric("adoption_rate").unwrap() > 0.0);
    }

    #[test]
    fn timeline_totals_match_columns() {
        let ix = small_index();
        let r = z02_fault_timeline(ix);
        let drops: u32 = ix.v_bids_dropped.iter().sum();
        let retries: u32 = ix.v_retries.iter().sum();
        assert_eq!(r.metric("total_drops").unwrap() as u32, drops);
        assert_eq!(r.metric("total_retries").unwrap() as u32, retries);
        assert!(!r.render().is_empty());
        assert!(!r.to_csv().is_empty());
    }

    #[test]
    fn fault_family_has_stable_ids() {
        let ix = small_index();
        let reports = fault_reports(ix);
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["Z1", "Z2"]);
    }
}
