//! Latency analyses: total HB latency ECDF (Fig. 12), latency vs rank
//! (Fig. 13), fastest/top/slowest partners (Fig. 14), latency vs number of
//! partners (Fig. 15), latency variability vs partner popularity (Fig. 16).
//!
//! All builders read the columnar [`DatasetIndex`] (build once, read
//! many) instead of re-scanning the row-oriented visit records.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_stats::{fmt_ms, fmt_pct, Align, Ecdf, GroupedSamples, Samples, Table, Whisker};
use std::collections::BTreeMap;

/// All per-visit HB latencies (ms), in visit order.
fn visit_latencies(ix: &DatasetIndex) -> Vec<f64> {
    ix.v_latency.iter().copied().filter(|l| !l.is_nan()).collect()
}

/// Fig. 12: ECDF of total HB latency per website.
pub fn f12_latency_ecdf(ix: &DatasetIndex) -> FigureReport {
    let lats = visit_latencies(ix);
    let ecdf = Ecdf::from_iter(lats.iter().copied());
    let s = Samples::from_iter(lats.iter().copied());
    let mut table = Table::new(
        "Fig. 12 — total HB latency per website (ECDF)",
        &["latency", "P[X<=x]"],
    );
    for ms in [100.0, 250.0, 400.0, 600.0, 1_000.0, 2_000.0, 3_000.0, 5_000.0, 10_000.0] {
        table.row(vec![fmt_ms(ms), format!("{:.4}", ecdf.eval(ms))]);
    }
    let median = s.median().unwrap_or(0.0);
    let over_1s = s.frac_above(1_000.0);
    let over_3s = s.frac_above(3_000.0);
    let over_5s = s.frac_above(5_000.0);
    FigureReport {
        id: "F12".into(),
        title: "Total HB latency".into(),
        paper_expectation: "median ≈600 ms; ~35% above 1 s; ~10% above 3 s; ~4% above 5 s".into(),
        table,
        metrics: vec![
            ("median_ms".into(), median),
            ("frac_over_1s".into(), over_1s),
            ("frac_over_3s".into(), over_3s),
            ("frac_over_5s".into(), over_5s),
            ("n".into(), s.len() as f64),
        ],
        notes: vec![],
    }
}

/// Fig. 13: latency vs site rank, in rank bins scaled like the paper's
/// bins of 500 (universe/70).
pub fn f13_latency_vs_rank(ix: &DatasetIndex) -> FigureReport {
    let bin_width = (ix.n_sites as u64 / 70).max(1);
    let mut grouped = GroupedSamples::new();
    for (i, &lat) in ix.v_latency.iter().enumerate() {
        if !lat.is_nan() {
            grouped.add(ix.v_rank[i] as u64 - 1, lat);
        }
    }
    let binned = grouped.rebinned(bin_width);
    let mut table = Table::new(
        "Fig. 13 — HB latency vs site rank",
        &["rank bin", "n", "p25", "median", "p75"],
    )
    .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right, Align::Right]);
    for (bin, w) in binned.whiskers().iter().take(10) {
        table.row(vec![
            format!("{}-{}", bin * bin_width + 1, (bin + 1) * bin_width),
            w.n.to_string(),
            fmt_ms(w.p25),
            fmt_ms(w.p50),
            fmt_ms(w.p75),
        ]);
    }
    let head_median = binned.get(0).and_then(|s| s.median()).unwrap_or(0.0);
    let rest: Vec<f64> = ix
        .v_latency
        .iter()
        .enumerate()
        .filter(|(i, l)| ix.v_rank[*i] as u64 > bin_width && !l.is_nan())
        .map(|(_, l)| *l)
        .collect();
    let rest_median = Samples::from_iter(rest).median().unwrap_or(0.0);
    FigureReport {
        id: "F13".into(),
        title: "HB latency vs domain popularity".into(),
        paper_expectation: "top-500 median ≈310 ms vs ≈500 ms for the rest".into(),
        table,
        metrics: vec![
            ("head_median_ms".into(), head_median),
            ("rest_median_ms".into(), rest_median),
            (
                "head_to_rest_ratio".into(),
                head_median / rest_median.max(1e-9),
            ),
        ],
        notes: vec![],
    }
}

/// Fig. 14: fastest, top-market and slowest partners (whiskers).
pub fn f14_partner_latency(ix: &DatasetIndex) -> FigureReport {
    let min_obs = 8;
    let mut whiskers: Vec<(&str, Whisker)> = ix
        .partner_latency
        .iter()
        .filter(|(_, v)| v.len() >= min_obs)
        .filter_map(|(p, v)| {
            Whisker::from_iter(v.iter().copied()).map(|w| (ix.str(*p), w))
        })
        .collect();
    whiskers.sort_by(|a, b| a.1.p50.partial_cmp(&b.1.p50).unwrap());

    let mut table = Table::new(
        "Fig. 14 — partner latency: fastest / top market / slowest",
        &["group", "partner", "p5", "p25", "median", "p75", "p95"],
    )
    .with_aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let push_rows = |table: &mut Table, group: &str, items: &[(&str, Whisker)]| {
        for (p, w) in items {
            table.row(vec![
                group.into(),
                p.to_string(),
                fmt_ms(w.p5),
                fmt_ms(w.p25),
                fmt_ms(w.p50),
                fmt_ms(w.p75),
                fmt_ms(w.p95),
            ]);
        }
    };
    let fastest: Vec<_> = whiskers.iter().take(10).cloned().collect();
    let slowest: Vec<_> = whiskers.iter().rev().take(10).cloned().collect();
    let top_names = [
        "DFP", "AppNexus", "Rubicon", "Criteo", "Index", "Amazon", "Openx", "Pubmatic", "AOL",
        "Sovrn", "Smart",
    ];
    let top: Vec<(&str, Whisker)> = top_names
        .iter()
        .filter_map(|n| {
            whiskers
                .iter()
                .find(|(p, _)| p == n)
                .cloned()
        })
        .collect();
    push_rows(&mut table, "fastest", &fastest);
    push_rows(&mut table, "top-market", &top);
    push_rows(&mut table, "slowest", &slowest);

    let fastest_median_max = fastest.last().map(|(_, w)| w.p50).unwrap_or(0.0);
    let slowest_median_min = slowest.last().map(|(_, w)| w.p50).unwrap_or(0.0);
    let top_medians: Vec<f64> = top.iter().map(|(_, w)| w.p50).collect();
    let top_median_avg = top_medians.iter().sum::<f64>() / top_medians.len().max(1) as f64;
    FigureReport {
        id: "F14".into(),
        title: "Fastest/top/slowest Demand Partners".into(),
        paper_expectation:
            "fastest medians 41–217 ms; slowest 646–1290 ms; top partners quick but not fastest"
                .into(),
        table,
        metrics: vec![
            ("fastest10_median_max_ms".into(), fastest_median_max),
            ("slowest10_median_min_ms".into(), slowest_median_min),
            ("top_market_median_avg_ms".into(), top_median_avg),
        ],
        notes: vec![],
    }
}

/// Fig. 15: latency and share of sites vs number of partners.
pub fn f15_latency_vs_partners(ix: &DatasetIndex) -> FigureReport {
    // Partner count per site (union over visits), latency per visit.
    let mut grouped = GroupedSamples::new();
    let mut site_counts = GroupedSamples::new();
    for site in &ix.sites {
        let k = site.partners.len() as u64;
        if k == 0 {
            continue;
        }
        site_counts.add(k, 0.0);
        for &lat in &site.latencies {
            grouped.add(k, lat);
        }
    }
    let shares: BTreeMap<u64, f64> = site_counts.shares().into_iter().collect();
    let mut table = Table::new(
        "Fig. 15 — HB latency vs number of Demand Partners",
        &["partners", "% sites", "n", "p25", "median", "p75"],
    )
    .with_aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (k, w) in grouped.whiskers().iter().filter(|(k, _)| *k <= 15) {
        table.row(vec![
            k.to_string(),
            fmt_pct(shares.get(k).copied().unwrap_or(0.0)),
            w.n.to_string(),
            fmt_ms(w.p25),
            fmt_ms(w.p50),
            fmt_ms(w.p75),
        ]);
    }
    let med = |k: u64| grouped.get(k).and_then(|s| s.median()).unwrap_or(0.0);
    FigureReport {
        id: "F15".into(),
        title: "Latency vs number of Demand Partners".into(),
        paper_expectation: "1 partner ≈0.27 s; 2 partners ≈1.1 s; >2 partners 1.3–3.0 s".into(),
        table,
        metrics: vec![
            ("median_1_partner_ms".into(), med(1)),
            ("median_2_partners_ms".into(), med(2)),
            ("median_3_partners_ms".into(), med(3)),
            ("median_5_partners_ms".into(), med(5)),
            ("share_1_partner".into(), shares.get(&1).copied().unwrap_or(0.0)),
        ],
        notes: vec![],
    }
}

/// Fig. 16: latency distribution vs partner popularity rank (bins of 10).
pub fn f16_latency_vs_popularity(ix: &DatasetIndex) -> FigureReport {
    let mut grouped = GroupedSamples::new();
    for (rank0, (name, _)) in ix.partner_popularity.iter().enumerate() {
        if let Some(lats) = ix.latency_samples_of(*name) {
            for &l in lats {
                grouped.add(rank0 as u64 / 10, l);
            }
        }
    }
    let mut table = Table::new(
        "Fig. 16 — latency vs partner popularity rank (bins of 10)",
        &["popularity bin", "n", "p25", "median", "p75", "spread(p75-p25)"],
    )
    .with_aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut spreads = Vec::new();
    for (bin, w) in grouped.whiskers() {
        table.row(vec![
            format!("{}-{}", bin * 10 + 1, (bin + 1) * 10),
            w.n.to_string(),
            fmt_ms(w.p25),
            fmt_ms(w.p50),
            fmt_ms(w.p75),
            fmt_ms(w.box_spread()),
        ]);
        spreads.push(w.box_spread());
    }
    let first_spread = spreads.first().copied().unwrap_or(0.0);
    let last_spread = spreads.last().copied().unwrap_or(0.0);
    FigureReport {
        id: "F16".into(),
        title: "Latency variability vs partner popularity".into(),
        paper_expectation:
            "popular partners vary within ~200 ms; unpopular ones spread 500–1000 ms".into(),
        table,
        metrics: vec![
            ("top_bin_spread_ms".into(), first_spread),
            ("bottom_bin_spread_ms".into(), last_spread),
            (
                "spread_growth".into(),
                last_spread / first_spread.max(1e-9),
            ),
        ],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn f12_median_in_paper_ballpark() {
        let ix = small_index();
        let r = f12_latency_ecdf(ix);
        let median = r.metric("median_ms").unwrap();
        assert!(median > 250.0 && median < 1_100.0, "median {median}");
        let over3 = r.metric("frac_over_3s").unwrap();
        assert!(over3 < 0.30, "frac>3s {over3}");
        assert!(r.metric("n").unwrap() > 100.0);
    }

    #[test]
    fn f13_head_is_faster() {
        let ix = small_index();
        let r = f13_latency_vs_rank(ix);
        let ratio = r.metric("head_to_rest_ratio").unwrap();
        assert!(ratio < 1.05, "head should not be slower: ratio {ratio}");
    }

    #[test]
    fn f14_slowest_exceed_fastest() {
        let ix = small_index();
        let r = f14_partner_latency(ix);
        let fast = r.metric("fastest10_median_max_ms").unwrap();
        let slow = r.metric("slowest10_median_min_ms").unwrap();
        assert!(slow > fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn f15_latency_grows_with_partners() {
        let ix = small_index();
        let r = f15_latency_vs_partners(ix);
        let one = r.metric("median_1_partner_ms").unwrap();
        let three = r.metric("median_3_partners_ms").unwrap();
        assert!(one > 0.0);
        if three > 0.0 {
            assert!(three > one, "3 partners {three} vs 1 partner {one}");
        }
    }

    #[test]
    fn f16_spread_grows_with_unpopularity() {
        let ix = small_index();
        let r = f16_latency_vs_popularity(ix);
        let growth = r.metric("spread_growth").unwrap();
        assert!(growth > 1.0, "spread growth {growth}");
    }
}
