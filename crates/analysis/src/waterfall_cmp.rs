//! The headline waterfall-vs-HB latency comparison (abstract / §1: "HB
//! latency can be significantly higher — up to 3x in the median case, and
//! up to 15x in 10% of cases — than waterfall").
//!
//! The detector deliberately does not capture waterfall activity (paper
//! §3.1 limitations), so the baseline side comes from the harness's
//! ground-truth records of waterfall sites crawled in the day-0 sweep.

use crate::index::DatasetIndex;
use crate::report::FigureReport;
use hb_stats::{fmt_f, fmt_ms, Align, Samples, Table};

/// X1: HB vs waterfall latency quantile comparison. Reads the index's
/// ground-truth latency columns (`t_*`), so it works for streamed indexes
/// that never materialized the row dataset.
pub fn x01_waterfall_compare(ix: &DatasetIndex) -> FigureReport {
    let hb_s = Samples::from_iter(ix.t_hb_latency.iter().copied());
    let wf_s = Samples::from_iter(ix.t_wf_latency.iter().copied());

    let mut table = Table::new(
        "X1 — HB vs waterfall latency",
        &["quantile", "HB", "waterfall", "ratio"],
    )
    .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    let mut ratios = Vec::new();
    for (label, q) in [("p25", 0.25), ("median", 0.5), ("p75", 0.75), ("p90", 0.9), ("p95", 0.95)]
    {
        let h = hb_s.quantile(q).unwrap_or(0.0);
        let w = wf_s.quantile(q).unwrap_or(0.0);
        let ratio = h / w.max(1e-9);
        table.row(vec![
            label.into(),
            fmt_ms(h),
            fmt_ms(w),
            fmt_f(ratio),
        ]);
        ratios.push((label, ratio));
    }
    let median_ratio = ratios
        .iter()
        .find(|(l, _)| *l == "median")
        .map(|(_, r)| *r)
        .unwrap_or(0.0);
    let p90_ratio = ratios
        .iter()
        .find(|(l, _)| *l == "p90")
        .map(|(_, r)| *r)
        .unwrap_or(0.0);
    FigureReport {
        id: "X1".into(),
        title: "HB latency vs waterfall baseline".into(),
        paper_expectation: "HB up to 3x waterfall at the median; up to 15x for 10% of cases".into(),
        table,
        metrics: vec![
            ("median_ratio".into(), median_ratio),
            ("p90_ratio".into(), p90_ratio),
            ("hb_median_ms".into(), hb_s.median().unwrap_or(0.0)),
            ("wf_median_ms".into(), wf_s.median().unwrap_or(0.0)),
            ("n_hb".into(), hb_s.len() as f64),
            ("n_wf".into(), wf_s.len() as f64),
        ],
        notes: vec![
            "waterfall baseline measured by the harness (ground truth); the detector does not capture waterfall (paper §3.1)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::small_index;

    #[test]
    fn hb_slower_than_waterfall_at_median() {
        let r = x01_waterfall_compare(small_index());
        let ratio = r.metric("median_ratio").unwrap();
        assert!(ratio > 1.2, "HB/waterfall median ratio {ratio}");
        assert!(ratio < 8.0, "ratio blew past plausibility: {ratio}");
        assert!(r.metric("n_hb").unwrap() > 50.0);
        assert!(r.metric("n_wf").unwrap() > 50.0);
    }

    #[test]
    fn tail_ratio_exceeds_median_ratio() {
        let r = x01_waterfall_compare(small_index());
        let med = r.metric("median_ratio").unwrap();
        let p90 = r.metric("p90_ratio").unwrap();
        assert!(p90 > med, "p90 {p90} should exceed median {med}");
    }
}
