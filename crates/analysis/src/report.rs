//! The common shape of every regenerated table/figure.

use hb_stats::Table;

/// One regenerated artifact (a table or the data series behind a figure).
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Stable id (`T1`, `F12`, `X1`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports (the expectation the shape is judged against).
    pub paper_expectation: String,
    /// The regenerated table.
    pub table: Table,
    /// Key scalar metrics extracted from the data (also used by tests and
    /// EXPERIMENTS.md).
    pub metrics: Vec<(String, f64)>,
    /// Free-form observations.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Render the report for stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n### [{}] {}\n", self.id, self.title));
        out.push_str(&format!("paper: {}\n", self.paper_expectation));
        out.push_str(&self.table.render());
        if !self.metrics.is_empty() {
            out.push_str("metrics: ");
            let parts: Vec<String> = self
                .metrics
                .iter()
                .map(|(k, v)| format!("{k}={v:.4}"))
                .collect();
            out.push_str(&parts.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// The CSV of the underlying table.
    pub fn to_csv(&self) -> String {
        self.table.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_metric_lookup() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        let r = FigureReport {
            id: "F99".into(),
            title: "test".into(),
            paper_expectation: "n/a".into(),
            table: t,
            metrics: vec![("m".into(), 0.5)],
            notes: vec!["hello".into()],
        };
        assert_eq!(r.metric("m"), Some(0.5));
        assert_eq!(r.metric("nope"), None);
        let s = r.render();
        assert!(s.contains("[F99]"));
        assert!(s.contains("m=0.5000"));
        assert!(s.contains("note: hello"));
        assert!(r.to_csv().starts_with("a\n"));
    }
}
