//! Historical adoption (Figure 4) and the toplist-overlap sanity table
//! (§3.2), built from the Wayback crawl results.

use crate::report::FigureReport;
use hb_crawler::{AdoptionPoint, OverlapPoint};
use hb_stats::{fmt_pct, Align, Table};

/// Fig. 4: HB adoption of the yearly top-1k lists, by static analysis.
pub fn f04_adoption(points: &[AdoptionPoint]) -> FigureReport {
    let mut table = Table::new(
        "Fig. 4 — HB adoption per year (top-1k, static analysis)",
        &["year", "pages", "detected", "ground truth"],
    )
    .with_aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    for p in points {
        table.row(vec![
            p.year.to_string(),
            p.n_pages.to_string(),
            fmt_pct(p.detected_rate),
            fmt_pct(p.true_rate),
        ]);
    }
    let first = points.first().map(|p| p.detected_rate).unwrap_or(0.0);
    let last = points.last().map(|p| p.detected_rate).unwrap_or(0.0);
    // Plateau after the 2016 breakthrough: 2017-2019 spread.
    let post: Vec<f64> = points
        .iter()
        .filter(|p| p.year >= 2017)
        .map(|p| p.detected_rate)
        .collect();
    let plateau_spread = post
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        - post.iter().cloned().fold(1.0f64, f64::min);
    FigureReport {
        id: "F4".into(),
        title: "HB adoption 2014-2019".into(),
        paper_expectation: "~10% early adopters (2014); steady ~20% after the 2016 breakthrough"
            .into(),
        table,
        metrics: vec![
            ("rate_2014".into(), first),
            ("rate_2019".into(), last),
            ("plateau_spread".into(), plateau_spread),
        ],
        notes: vec!["historical pages cannot be rendered; static analysis per §4.1".into()],
    }
}

/// §3.2: overlap of the purchased base list with yearly lists.
pub fn f04b_overlaps(points: &[OverlapPoint]) -> FigureReport {
    let mut table = Table::new(
        "§3.2 — toplist overlap vs purchased 01/2017 list",
        &["snapshot", "overlap"],
    )
    .with_aligns(&[Align::Left, Align::Right]);
    for p in points {
        table.row(vec![p.label.clone(), fmt_pct(p.overlap)]);
    }
    let decreasing = points.windows(2).all(|w| w[1].overlap <= w[0].overlap + 1e-9);
    FigureReport {
        id: "F4b".into(),
        title: "Toplist overlap across years".into(),
        paper_expectation: "78.36% (2017-06), 62.10% (2018-06), 58.36% (2019-02), 55.34% (2019-06)"
            .into(),
        table,
        metrics: vec![
            (
                "overlap_first".into(),
                points.first().map(|p| p.overlap).unwrap_or(0.0),
            ),
            (
                "overlap_last".into(),
                points.last().map(|p| p.overlap).unwrap_or(0.0),
            ),
            ("monotone_decreasing".into(), if decreasing { 1.0 } else { 0.0 }),
        ],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_crawler::{adoption_study, overlap_study};

    #[test]
    fn f04_shape() {
        let pts = adoption_study(11, 1_000);
        let r = f04_adoption(&pts);
        let r14 = r.metric("rate_2014").unwrap();
        let r19 = r.metric("rate_2019").unwrap();
        assert!(r19 > r14, "2019 {r19} vs 2014 {r14}");
        assert!(r.metric("plateau_spread").unwrap() < 0.06);
        assert!(r.render().contains("2016"));
    }

    #[test]
    fn f04b_overlaps_decrease() {
        let pts = overlap_study(11, 2_000);
        let r = f04b_overlaps(&pts);
        assert_eq!(r.metric("monotone_decreasing"), Some(1.0));
        assert!((r.metric("overlap_first").unwrap() - 0.7836).abs() < 0.02);
        assert!((r.metric("overlap_last").unwrap() - 0.5534).abs() < 0.02);
    }
}
