//! # hb-analysis
//!
//! The analysis layer regenerating every table and figure of the paper
//! from a [`CrawlDataset`](hb_crawler::CrawlDataset): dataset summary
//! (Table 1), adoption (§4.1, Fig. 4), facets (§4.6), partners
//! (Figs. 8-11), latency (Figs. 12-16), late bids (Figs. 17-18), ad slots
//! (Figs. 19-21), prices (Figs. 22-24), and the waterfall baseline
//! comparison (abstract claim). Each builder returns a [`FigureReport`]
//! carrying the regenerated table, key scalar metrics, and the paper's
//! stated expectation for side-by-side judgment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adoption;
pub mod faults;
pub mod index;
pub mod late;
pub mod latency;
pub mod partners;
pub mod prices;
pub mod registry;
pub mod report;
pub mod slots;
pub mod summary;
pub mod waterfall_cmp;

#[doc(hidden)]
pub mod test_fixtures;

pub use faults::{fault_reports, FaultSlice};
pub use index::{DatasetIndex, DatasetIndexBuilder};
pub use registry::{all_reports, dataset_reports, history_reports, indexed_reports};
pub use report::FigureReport;
