//! Property tests for ecosystem generation invariants across arbitrary
//! seeds and ranks.

use hb_adtech::HbFacet;
use hb_ecosystem::{catalog, EcosystemConfig};
use hb_simnet::Rng;
use proptest::prelude::*;

fn gen_site(seed: u64, rank: u32) -> hb_ecosystem::SiteProfile {
    let cfg = EcosystemConfig::paper_scale();
    let specs = catalog::catalog();
    let providers = catalog::providers(&specs);
    let pool = catalog::s2s_pool(&specs);
    let mut rng = Rng::new(seed).derive(rank as u64);
    hb_ecosystem::publisher::generate_site(&cfg, &specs, &providers, &pool, rank, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated site satisfies the structural invariants.
    #[test]
    fn site_invariants(seed in any::<u64>(), rank in 1u32..35_000) {
        let site = gen_site(seed, rank);
        prop_assert_eq!(&site.domain, &format!("pub{rank}.example"));
        // Partner ids are within the catalog.
        for &i in &site.client_partner_ids {
            prop_assert!(i < 84);
        }
        for &i in &site.s2s_partner_ids {
            prop_assert!(i < 84);
        }
        // No duplicate client partners.
        let mut ids = site.client_partner_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), site.client_partner_ids.len());
        // Facet-specific structure.
        match site.facet {
            Some(HbFacet::ServerSide) => {
                prop_assert!(site.client_partner_ids.is_empty());
                prop_assert!(site.provider_id.is_some());
                prop_assert!(!site.s2s_partner_ids.is_empty());
                prop_assert!(!site.wrapper.send_immediately);
            }
            Some(HbFacet::ClientSide) => {
                prop_assert!(site.provider_id.is_none());
                prop_assert!(!site.client_partner_ids.is_empty());
                prop_assert!(site.s2s_partner_ids.is_empty());
            }
            Some(HbFacet::Hybrid) => {
                prop_assert!(site.provider_id.is_some());
                prop_assert!(!site.client_partner_ids.is_empty());
            }
            None => {
                prop_assert!(site.client_partner_ids.is_empty());
                prop_assert!(site.provider_id.is_none());
            }
        }
        // Every site has a waterfall chain and at least one ad unit.
        prop_assert!(!site.waterfall_tier_ids.is_empty());
        prop_assert!(!site.ad_units.is_empty());
        prop_assert!(site.ad_units.len() <= 84, "unit count sane");
        // Slot codes are unique.
        let mut codes: Vec<&str> = site.ad_units.iter().map(|u| u.code.as_str()).collect();
        codes.sort_unstable();
        codes.dedup();
        prop_assert_eq!(codes.len(), site.ad_units.len());
        // Network quality within the modelled band.
        prop_assert!(site.net_quality > 0.5 && site.net_quality < 1.5);
        // Floors are positive and small.
        prop_assert!(site.floor > 0.0 && site.floor < 0.1);
    }

    /// Generation is a pure function of (seed, rank).
    #[test]
    fn generation_deterministic(seed in any::<u64>(), rank in 1u32..10_000) {
        let a = gen_site(seed, rank);
        let b = gen_site(seed, rank);
        prop_assert_eq!(a.facet, b.facet);
        prop_assert_eq!(a.client_partner_ids, b.client_partner_ids);
        prop_assert_eq!(a.ad_units.len(), b.ad_units.len());
        prop_assert_eq!(a.net_quality, b.net_quality);
    }

    /// Partner hosts in the catalog are routable names and unique.
    #[test]
    fn catalog_hosts_unique(_x in 0u8..1) {
        let specs = catalog::catalog();
        let mut hosts: Vec<String> = specs.iter().map(|s| s.host()).collect();
        hosts.sort();
        let before = hosts.len();
        hosts.dedup();
        prop_assert_eq!(hosts.len(), before);
    }

    /// The memoized `Ecosystem::sites()` table and a separately built
    /// factory agree for every rank, across arbitrary seeds and toplist
    /// sizes — the wrapper may cache but never diverge. (Endpoint-level
    /// parity of the lazy world against the eager `build_world` is
    /// covered by `world::tests::lazy_world_matches_eager_world`.)
    #[test]
    fn lazy_factory_matches_eager_generation(seed in any::<u64>(), n_sites in 1u32..400) {
        let cfg = EcosystemConfig::tiny_scale().with_seed(seed).with_sites(n_sites);
        let eco = hb_ecosystem::Ecosystem::generate(cfg.clone());
        let factory = hb_ecosystem::SiteFactory::new(cfg);
        prop_assert_eq!(eco.sites().len() as u32, n_sites);
        for eager in eco.sites() {
            let lazy = factory.site(eager.rank);
            prop_assert_eq!(&lazy.domain, &eager.domain);
            prop_assert_eq!(lazy.facet, eager.facet);
            prop_assert_eq!(&lazy.client_partner_ids, &eager.client_partner_ids);
            prop_assert_eq!(lazy.provider_id, eager.provider_id);
            prop_assert_eq!(&lazy.s2s_partner_ids, &eager.s2s_partner_ids);
            prop_assert_eq!(&lazy.waterfall_tier_ids, &eager.waterfall_tier_ids);
            prop_assert_eq!(lazy.ad_units.len(), eager.ad_units.len());
            prop_assert_eq!(lazy.wrapper.timeout, eager.wrapper.timeout);
            prop_assert_eq!(lazy.wrapper.send_immediately, eager.wrapper.send_immediately);
            prop_assert_eq!(lazy.page_latency_ms, eager.page_latency_ms);
            prop_assert_eq!(lazy.net_quality, eager.net_quality);
            prop_assert_eq!(lazy.direct_order_cpm, eager.direct_order_cpm);
            prop_assert_eq!(lazy.floor, eager.floor);
        }
    }
}
