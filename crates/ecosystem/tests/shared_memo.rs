//! Concurrency guarantees of the universe-shared derivation memo.
//!
//! PR 7 replaced the per-thread LRU memos with one sharded concurrent
//! memo per universe: the first worker to derive a rank publishes the
//! `Arc`, and every other worker — concurrent or later — gets a clone of
//! that same allocation. These tests hammer the memo from several
//! threads with overlapping rank sets and check the two properties the
//! campaign leans on:
//!
//! * **shared**: all threads resolve a rank to pointer-equal handles
//!   (one derivation per rank per universe, no per-thread copies);
//! * **never torn**: every handle a thread observes is a complete,
//!   correct derivation — byte-identical to the single-threaded one —
//!   no matter how the publication race interleaves.

use hb_ecosystem::{EcosystemConfig, SiteFactory, SiteProfile};
use hb_http::HStr;
use proptest::prelude::*;
use std::sync::Arc;

/// What one thread observed for one rank.
type Observation = (u32, Arc<SiteProfile>, Arc<hb_adtech::SiteRuntime>, HStr);

/// Spawn `threads` workers over `ranks`, each walking the whole set from
/// a staggered offset so lookups of the same rank collide mid-flight.
fn hammer(factory: &SiteFactory, ranks: &[u32], threads: usize) -> Vec<Vec<Observation>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let offset = t * ranks.len() / threads;
                    (0..ranks.len())
                        .map(|i| {
                            let rank = ranks[(i + offset) % ranks.len()];
                            (
                                rank,
                                factory.site_shared(rank),
                                factory.runtime_shared(rank),
                                factory.gen().page_html_shared(rank),
                            )
                        })
                        .collect::<Vec<Observation>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("memo worker thread panicked"))
            .collect()
    })
}

/// Assert every observation of `rank` across all threads is pointer-equal
/// (one published derivation) and matches the reference derivation.
fn check_observations(factory: &SiteFactory, observed: &[Vec<Observation>]) {
    let mut by_rank: std::collections::BTreeMap<u32, Vec<&Observation>> = Default::default();
    for thread in observed {
        for obs in thread {
            by_rank.entry(obs.0).or_default().push(obs);
        }
    }
    for (rank, obs) in by_rank {
        let (_, first_site, first_rt, first_html) = obs[0];
        for (_, site, rt, html) in &obs {
            assert!(
                Arc::ptr_eq(site, first_site),
                "rank {rank}: site Arcs must be pointer-equal across threads"
            );
            assert!(
                Arc::ptr_eq(rt, first_rt),
                "rank {rank}: runtime Arcs must be pointer-equal across threads"
            );
            // The page is long enough to live behind an `Arc<str>`; the
            // shared repr means the byte pointer itself is shared.
            assert_eq!(
                html.as_str().as_ptr(),
                first_html.as_str().as_ptr(),
                "rank {rank}: page HTML must share one allocation"
            );
        }
        // Never torn: what the memo served is exactly the pure
        // single-threaded derivation of (seed, rank).
        let reference = factory.site(rank);
        assert_eq!(first_site.domain, reference.domain);
        assert_eq!(first_site.facet, reference.facet);
        assert_eq!(first_site.client_partner_ids, reference.client_partner_ids);
        assert_eq!(first_site.waterfall_tier_ids, reference.waterfall_tier_ids);
        assert_eq!(first_rt.ad_units.len(), reference.ad_units.len());
        let expected_html = hb_ecosystem::page_html(&reference, factory.specs());
        assert_eq!(first_html.as_str(), expected_html.as_str());
    }
}

#[test]
fn eight_threads_share_every_derivation() {
    let factory = SiteFactory::new(EcosystemConfig::tiny_scale());
    let ranks: Vec<u32> = (1..=200).collect();
    let observed = hammer(&factory, &ranks, 8);
    check_observations(&factory, &observed);
}

#[test]
fn cleared_memo_republishes_consistently() {
    // Clearing the memo between rounds forces a fresh publication race;
    // each round must again converge on one allocation per rank, and the
    // re-derived values must match the originals byte for byte.
    let factory = SiteFactory::new(EcosystemConfig::tiny_scale());
    let ranks: Vec<u32> = (1..=64).collect();
    let first = hammer(&factory, &ranks, 4);
    check_observations(&factory, &first);
    factory.clear_memos();
    let second = hammer(&factory, &ranks, 4);
    check_observations(&factory, &second);
    // Across the clear, contents agree even though the allocations are new.
    for (a, b) in first[0].iter().zip(second[0].iter()) {
        assert_eq!(a.1.domain, b.1.domain);
        assert_eq!(a.3.as_str(), b.3.as_str());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary seeds and overlapping rank subsets: N threads racing the
    /// memo always resolve to pointer-equal, untorn derivations. Rank
    /// sets stay far below the shard cap so no eviction interferes with
    /// the pointer-equality half of the property.
    #[test]
    fn concurrent_lookups_share_one_derivation(
        seed in any::<u64>(),
        ranks in proptest::collection::vec(1u32..=200, 8..48),
    ) {
        let factory =
            SiteFactory::new(EcosystemConfig::tiny_scale().with_seed(seed));
        let observed = hammer(&factory, &ranks, 4);
        check_observations(&factory, &observed);
    }
}
