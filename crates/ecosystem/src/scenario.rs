//! Campaign-level degraded-network scenarios.
//!
//! A [`ScenarioConfig`] composes independent fault axes on top of a
//! universe configuration:
//!
//! * **scheduled outages** — a host is hard-down for an inclusive range of
//!   sim-days (the partner's `rtb.` waterfall edge goes down with it);
//! * **ambient loss profiles** — per-host drop/slowdown overrides, how one
//!   partner *tier* gets a worse loss profile than the rest of the network;
//! * **degraded links** — per-host latency-model overrides (a congested
//!   route to one endpoint);
//! * **robustness policy** — the ad path's posture under the faults
//!   (deadlines, retry, passback), threaded into every
//!   [`SiteRuntime`](hb_adtech::SiteRuntime) and ad-server account.
//!
//! Everything is deterministic in `(seed, rank, day)`: outage activation is
//! a pure day-range check and ambient decisions are drawn from the visit's
//! own RNG stream, so figure bytes are identical across parallelism and
//! shard splits. [`ScenarioConfig::healthy()`] (the default) adds nothing
//! and keeps campaigns byte-identical to a build without scenarios.

use hb_adtech::RobustnessPolicy;
use hb_simnet::{FaultInjector, HStr, HostFaultProfile, LatencyModel};

/// A scheduled hard outage: `host` is down for sim-days
/// `from_day..=to_day`. The matching waterfall edge (`rtb.{host}`) is
/// taken down as well, so both the HB bid path and the daisy-chain tier
/// see the outage.
#[derive(Clone, Debug)]
pub struct OutageWindow {
    /// The endpoint that goes dark (a partner catalog host, a provider
    /// ads host, a publisher page — any routable hostname).
    pub host: HStr,
    /// First affected day (inclusive).
    pub from_day: u32,
    /// Last affected day (inclusive).
    pub to_day: u32,
}

impl OutageWindow {
    /// Build a window; days are inclusive on both ends.
    pub fn new(host: impl Into<HStr>, from_day: u32, to_day: u32) -> OutageWindow {
        OutageWindow {
            host: host.into(),
            from_day,
            to_day,
        }
    }

    /// Is the outage active on `day`?
    pub fn active_on(&self, day: u32) -> bool {
        self.from_day <= day && day <= self.to_day
    }
}

/// Composable campaign fault axes. The default ([`ScenarioConfig::healthy`])
/// is the no-op scenario: no outages, no profiles, no degraded links, the
/// robustness policy off — a campaign built with it is byte-identical to
/// one built before scenarios existed.
#[derive(Clone, Debug, Default)]
pub struct ScenarioConfig {
    /// Scheduled per-host outage windows.
    pub outages: Vec<OutageWindow>,
    /// Ambient per-host loss/slowdown overrides (partner-tier profiles).
    pub host_profiles: Vec<(HStr, HostFaultProfile)>,
    /// Per-host latency-model overrides (degraded links).
    pub degraded_links: Vec<(HStr, LatencyModel)>,
    /// Robustness posture of the ad path under the faults.
    pub robustness: RobustnessPolicy,
}

impl ScenarioConfig {
    /// The no-op scenario (everything off; baseline byte-identity).
    pub fn healthy() -> ScenarioConfig {
        ScenarioConfig::default()
    }

    /// True when the scenario changes nothing (the baseline fast path:
    /// the factory then shares one fault injector across all days).
    pub fn is_healthy(&self) -> bool {
        self.outages.is_empty()
            && self.host_profiles.is_empty()
            && self.degraded_links.is_empty()
            && self.robustness.is_off()
    }

    /// Builder: schedule an outage of `host` (and its `rtb.` edge) for
    /// days `from_day..=to_day`.
    pub fn with_outage(
        mut self,
        host: impl Into<HStr>,
        from_day: u32,
        to_day: u32,
    ) -> ScenarioConfig {
        self.outages.push(OutageWindow::new(host, from_day, to_day));
        self
    }

    /// Builder: give `host` its own ambient loss/slowdown profile.
    pub fn with_host_profile(
        mut self,
        host: impl Into<HStr>,
        profile: HostFaultProfile,
    ) -> ScenarioConfig {
        self.host_profiles.push((host.into(), profile));
        self
    }

    /// Builder: give every host in a provider slice — and each host's
    /// `rtb.` waterfall edge — the same ambient fault profile. This is
    /// the serving-plane shorthand for "these N providers are degraded":
    /// the serving tests and `serve/*` benches use it to push a
    /// deterministic slice of the bidder population into the regime
    /// where circuit breakers trip and hedges fire.
    pub fn with_provider_slice<I, H>(
        mut self,
        hosts: I,
        profile: HostFaultProfile,
    ) -> ScenarioConfig
    where
        I: IntoIterator<Item = H>,
        H: Into<HStr>,
    {
        for host in hosts {
            let host: HStr = host.into();
            self.host_profiles.push((
                HStr::from_display(format_args!("rtb.{host}")),
                profile.clone(),
            ));
            self.host_profiles.push((host, profile.clone()));
        }
        self
    }

    /// Builder: override the latency model of the link to `host`.
    pub fn with_degraded_link(
        mut self,
        host: impl Into<HStr>,
        model: LatencyModel,
    ) -> ScenarioConfig {
        self.degraded_links.push((host.into(), model));
        self
    }

    /// Builder: set the ad path's robustness policy.
    pub fn with_robustness(mut self, policy: RobustnessPolicy) -> ScenarioConfig {
        self.robustness = policy;
        self
    }

    /// Do any outage windows exist (on any day)?
    pub fn has_outages(&self) -> bool {
        !self.outages.is_empty()
    }

    /// Apply this scenario's day-independent axes (ambient host profiles)
    /// to a base injector, then the outages active on `day` — each outage
    /// covers both the host and its `rtb.` waterfall edge.
    pub fn injector_for_day(&self, base: &FaultInjector, day: u32) -> FaultInjector {
        let mut inj = base.clone();
        for (host, profile) in &self.host_profiles {
            inj.set_host_profile(host.clone(), profile.clone());
        }
        for outage in &self.outages {
            if outage.active_on(day) {
                inj.add_outage(outage.host.clone());
                inj.add_outage(HStr::from_display(format_args!("rtb.{}", outage.host)));
            }
        }
        inj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_simnet::{Dist, FaultDecision, Rng, SimDuration};

    #[test]
    fn healthy_is_default_and_noop() {
        assert!(ScenarioConfig::healthy().is_healthy());
        assert!(ScenarioConfig::default().is_healthy());
        let s = ScenarioConfig::healthy().with_outage("x.example", 0, 3);
        assert!(!s.is_healthy());
        assert!(s.has_outages());
        let s = ScenarioConfig::healthy()
            .with_robustness(RobustnessPolicy::degraded_defaults());
        assert!(!s.is_healthy());
        assert!(!s.has_outages());
    }

    #[test]
    fn outage_window_day_range_is_inclusive() {
        let w = OutageWindow::new("p.example", 2, 4);
        assert!(!w.active_on(1));
        assert!(w.active_on(2));
        assert!(w.active_on(3));
        assert!(w.active_on(4));
        assert!(!w.active_on(5));
    }

    #[test]
    fn injector_covers_host_and_rtb_edge_inside_window() {
        let s = ScenarioConfig::healthy().with_outage("appnexus-adnet.example", 1, 2);
        let base = FaultInjector::none();
        let mut rng = Rng::new(1);

        let day0 = s.injector_for_day(&base, 0);
        assert_eq!(
            day0.decide("appnexus-adnet.example", &mut rng),
            FaultDecision::Deliver
        );

        let day1 = s.injector_for_day(&base, 1);
        assert_eq!(
            day1.decide("appnexus-adnet.example", &mut rng),
            FaultDecision::Drop
        );
        assert_eq!(
            day1.decide("rtb.appnexus-adnet.example", &mut rng),
            FaultDecision::Drop
        );
        assert_eq!(
            day1.decide("other.example", &mut rng),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn injector_applies_ambient_host_profiles_every_day() {
        let s = ScenarioConfig::healthy().with_host_profile(
            "lossy.example",
            HostFaultProfile {
                drop_chance: 1.0,
                slow_chance: 0.0,
                slow_penalty_ms: Dist::Const(0.0),
            },
        );
        let base = FaultInjector::none();
        let mut rng = Rng::new(2);
        for day in 0..3 {
            let inj = s.injector_for_day(&base, day);
            assert_eq!(inj.decide("lossy.example", &mut rng), FaultDecision::Drop);
            assert_eq!(inj.decide("ok.example", &mut rng), FaultDecision::Deliver);
        }
    }

    #[test]
    fn provider_slice_degrades_hosts_and_rtb_edges() {
        let lossy = HostFaultProfile {
            drop_chance: 1.0,
            slow_chance: 0.0,
            slow_penalty_ms: Dist::Const(0.0),
        };
        let s = ScenarioConfig::healthy()
            .with_provider_slice(["p0.example", "p1.example"], lossy);
        assert_eq!(s.host_profiles.len(), 4, "host + rtb edge per provider");
        let base = FaultInjector::none();
        let mut rng = Rng::new(7);
        let inj = s.injector_for_day(&base, 0);
        for host in ["p0.example", "rtb.p0.example", "p1.example", "rtb.p1.example"] {
            assert_eq!(inj.decide(host, &mut rng), FaultDecision::Drop, "{host}");
        }
        assert_eq!(inj.decide("p2.example", &mut rng), FaultDecision::Deliver);
    }

    #[test]
    fn degraded_link_builder_records_model() {
        let s = ScenarioConfig::healthy()
            .with_degraded_link("congested.example", LatencyModel::constant(900.0));
        assert_eq!(s.degraded_links.len(), 1);
        let mut rng = Rng::new(3);
        assert_eq!(
            s.degraded_links[0].1.sample(&mut rng),
            SimDuration::from_millis(900)
        );
    }
}
