//! Historical snapshot generation — the Wayback Machine substitute.
//!
//! Figure 4 of the paper measures HB adoption 2014–2019 by statically
//! analyzing archived copies of each year's top-1k sites. The archive
//! itself is not reproducible offline, so this module generates per-year
//! static HTML with era-appropriate wrapper markers: adoption grows from
//! ~10% (early adopters, 2014) to ~20% (post-2016 breakthrough), and the
//! wrapper technology shifts from bespoke inline code to prebid.js.

use crate::toplist::TopList;
use hb_dom::HtmlBuilder;
use hb_simnet::Rng;

/// Target adoption rate of the top-1k sites per year (Figure 4 shape).
pub const YEARLY_ADOPTION: [(u32, f64); 6] = [
    (2014, 0.10),
    (2015, 0.115),
    (2016, 0.165),
    (2017, 0.195),
    (2018, 0.205),
    (2019, 0.215),
];

/// One archived page.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Site domain.
    pub domain: String,
    /// The year of the snapshot.
    pub year: u32,
    /// Whether HB code was actually embedded (ground truth).
    pub has_hb: bool,
    /// The archived HTML.
    pub html: String,
}

/// Generate the archived page of `domain` for `year`.
///
/// Known imperfections of the archive are modelled: a small fraction of
/// HB pages carry renamed wrappers that static analysis misses (false
/// negatives), and a small fraction of non-HB pages ship misnamed
/// libraries that trip the signatures (false positives) — the precision
/// discussion of §3.1.
pub fn snapshot(domain: &str, year: u32, adopted: bool, rng: &mut Rng) -> Snapshot {
    let mut b = HtmlBuilder::new(format!("{domain} ({year})"));
    b = b.head_script("https://static.example/site.js");
    if adopted {
        let renamed = rng.chance(0.03); // false-negative mode
        if renamed {
            b = b.head_script("https://cdn.example/w.min.js");
        } else if year < 2016 {
            // Early adopters ran bespoke header auctions.
            b = b.head_inline("headerBidding.init({partners: 3});");
        } else {
            b = b.head_script("https://cdn.hbrepro.example/prebid.js");
            b = b.head_inline("pbjs.requestBids({timeout: 3000});");
        }
    } else if rng.chance(0.004) {
        // False-positive mode: an unrelated library with an HB-ish name.
        b = b.head_script("https://cdn.example/vendor/prebid-polyfill-shim.js");
    }
    b = b.ad_slot("ad-slot-1");
    Snapshot {
        domain: domain.to_string(),
        year,
        has_hb: adopted,
        html: b.build(),
    }
}

/// Generate the full per-year archive for a top list.
pub fn yearly_archive(list: &TopList, year: u32, adoption: f64, rng: &mut Rng) -> Vec<Snapshot> {
    // Early adopters persist: a site's adoption is keyed to a stable hash
    // of its domain with a year-dependent threshold, so the set of HB
    // sites grows (mostly) monotonically across years — matching how
    // Figure 4 shows early adopters staying adopted.
    list.domains
        .iter()
        .map(|d| {
            let h = hb_simnet::fnv1a(d.as_bytes());
            let u = (h % 1_000_000) as f64 / 1_000_000.0;
            let adopted = u < adoption;
            let mut site_rng = rng.derive(h ^ year as u64);
            snapshot(d, year, adopted, &mut site_rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::{analyze_html, LibrarySignatures};

    #[test]
    fn adoption_rates_grow_over_years() {
        let rates: Vec<f64> = YEARLY_ADOPTION.iter().map(|(_, r)| *r).collect();
        for w in rates.windows(2) {
            assert!(w[1] >= w[0], "adoption should be non-decreasing");
        }
        assert!(rates[0] <= 0.11);
        assert!(rates[5] >= 0.20);
    }

    #[test]
    fn adopted_snapshot_is_statically_detectable() {
        let mut rng = Rng::new(11);
        // Use a seed path avoiding the renamed-library mode.
        let s = snapshot("pub1.example", 2018, true, &mut rng);
        assert!(s.has_hb);
        let f = analyze_html(&LibrarySignatures::default(), &s.html);
        assert!(f.hb_suspected);
    }

    #[test]
    fn early_era_uses_inline_markers() {
        // A few snapshots hit the 3% renamed-wrapper (false-negative)
        // branch, so assert over a sample.
        let mut rng = Rng::new(13);
        let mut inline = 0;
        let n = 60;
        for i in 0..n {
            let s = snapshot(&format!("pub{i}.example"), 2014, true, &mut rng);
            if s.html.contains("headerBidding.init") {
                inline += 1;
                let f = analyze_html(&LibrarySignatures::default(), &s.html);
                assert!(f.hb_suspected);
            }
        }
        assert!(inline >= n * 9 / 10, "inline marker count {inline}/{n}");
    }

    #[test]
    fn clean_snapshot_not_detected() {
        let mut rng = Rng::new(17);
        let s = snapshot("pub3.example", 2017, false, &mut rng);
        // rng.chance(0.004) with this seed does not fire.
        let f = analyze_html(&LibrarySignatures::default(), &s.html);
        assert!(!f.hb_suspected);
    }

    #[test]
    fn yearly_archive_rate_near_target() {
        let list = TopList::base(1_000);
        let mut rng = Rng::new(19);
        let snaps = yearly_archive(&list, 2018, 0.205, &mut rng);
        let rate = snaps.iter().filter(|s| s.has_hb).count() as f64 / snaps.len() as f64;
        assert!((rate - 0.205).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn adoption_is_sticky_across_years() {
        let list = TopList::base(500);
        let mut rng = Rng::new(23);
        let y14 = yearly_archive(&list, 2014, 0.10, &mut rng);
        let y18 = yearly_archive(&list, 2018, 0.205, &mut rng);
        // Every 2014 adopter is still an adopter in 2018 (threshold grew).
        for (a, b) in y14.iter().zip(y18.iter()) {
            if a.has_hb {
                assert!(b.has_hb, "{} regressed", a.domain);
            }
        }
    }
}
