//! Publisher (site) profile generation.
//!
//! Every site in the toplist gets a deterministic profile: whether it runs
//! HB (rank-banded adoption), which facet, which partners, how many ad
//! units of which sizes, how its wrapper is tuned, and what its waterfall
//! chain looks like. All the marginals are calibrated against the paper's
//! §4–§5 (see DESIGN.md §5).

use crate::catalog::PartnerSpec;
use crate::config::EcosystemConfig;
use crate::sizes::sample_size;
use crate::toplist::site_domain_hstr;
use hb_adtech::{AdUnit, Cpm, HbFacet, PartnerRef, WrapperConfig};
use hb_http::HStr;
use hb_simnet::{Rng, SimDuration};
use std::sync::Arc;

/// Ground-truth profile of one site.
#[derive(Clone, Debug)]
pub struct SiteProfile {
    /// 1-based rank.
    pub rank: u32,
    /// Site hostname (inline [`HStr`]: derivation never heap-allocates it).
    pub domain: HStr,
    /// HB facet; `None` = waterfall-only site.
    pub facet: Option<HbFacet>,
    /// Catalog indices of client-side partners.
    pub client_partner_ids: Vec<usize>,
    /// Catalog index of the server-side provider (server/hybrid).
    pub provider_id: Option<usize>,
    /// Catalog indices of the provider's s2s pool for this account.
    pub s2s_partner_ids: Vec<usize>,
    /// Ad units (slot duplication for devices already applied). Shared so
    /// the runtime and ad-server account reference the same slice instead
    /// of deep-cloning unit lists on every derivation.
    pub ad_units: Arc<[AdUnit]>,
    /// Wrapper tuning.
    pub wrapper: WrapperConfig,
    /// Catalog indices of the waterfall tier partners, in order.
    pub waterfall_tier_ids: Vec<usize>,
    /// Page server latency median (ms), rank-dependent.
    pub page_latency_ms: f64,
    /// Network quality multiplier for the whole visit (head sites < 1).
    pub net_quality: f64,
    /// Direct-order eCPM available to this site, if any.
    pub direct_order_cpm: Option<f64>,
    /// Floor price for HB bids.
    pub floor: f64,
}

impl SiteProfile {
    /// The page URL.
    pub fn url_string(&self) -> String {
        format!("https://{}/", self.domain)
    }

    /// Host of the site's own ad server (client-side facet). Rendered
    /// through a stack buffer — short hosts never touch the heap.
    pub fn own_ad_server_host(&self) -> HStr {
        HStr::from_display(format_args!("ads.{}", self.domain))
    }

    /// Ad-server account id (stack-rendered, inline).
    pub fn account_id(&self) -> HStr {
        HStr::from_display(format_args!("pub-{}", self.rank))
    }

    /// Number of unique demand partners as the paper counts them
    /// (request-level: client partners plus the provider).
    pub fn expected_partner_count(&self) -> usize {
        self.client_partner_ids.len() + usize::from(self.provider_id.is_some())
    }
}

/// Per-facet ad-unit count distribution (Fig. 19: medians 2–6, p90 5–11).
fn sample_unit_count(facet: HbFacet, rng: &mut Rng) -> usize {
    let (pmf, max): (&[f64], usize) = match facet {
        // client: median 3-4
        HbFacet::ClientSide => (&[0.06, 0.16, 0.21, 0.21, 0.13, 0.09, 0.06, 0.04, 0.04], 12),
        // server: median 2-3, but the longest upper tail (Fig. 19: the
        // server-side ECDF crosses above hybrid for the top ~30%)
        HbFacet::ServerSide => (&[0.20, 0.26, 0.16, 0.10, 0.07, 0.05, 0.04, 0.03, 0.09], 14),
        // hybrid: median 5, auctions the most slots for ~70% of sites
        HbFacet::Hybrid => (&[0.03, 0.08, 0.13, 0.16, 0.17, 0.14, 0.10, 0.08, 0.11], 14),
    };
    match rng.weighted_index(pmf) {
        Some(i) if i + 1 < pmf.len() => i + 1,
        _ => pmf.len() + rng.index(max - pmf.len()),
    }
}

/// Client-partner count distributions (drives Fig. 9; see DESIGN.md §5).
fn sample_client_partner_count(facet: HbFacet, rng: &mut Rng) -> usize {
    let pmf: &[f64] = match facet {
        // P(1)=0.23 so that 48% (server) + 17.3%*0.23 + ... lands at ~52%
        // of sites with exactly one partner.
        HbFacet::ClientSide => &[
            0.23, 0.22, 0.18, 0.12, 0.08, 0.05, 0.04, 0.03, 0.02, 0.008, 0.007, 0.006, 0.004,
            0.003, 0.002, 0.002, 0.002, 0.001, 0.001,
        ],
        // Hybrid adds the provider on top, so k here is client-side fanout.
        HbFacet::Hybrid => &[
            0.20, 0.20, 0.15, 0.12, 0.08, 0.06, 0.04, 0.03, 0.028, 0.022, 0.018, 0.014, 0.012,
            0.010, 0.008, 0.006, 0.005, 0.004, 0.003,
        ],
        HbFacet::ServerSide => return 0,
    };
    rng.weighted_index(pmf).map(|i| i + 1).unwrap_or(1)
}

/// Select `k` distinct client partners, weighted by popularity. Top-ranked
/// sites lean toward fast partners (they can afford integration work and
/// care about latency), which drives Fig. 13. The per-rank weights are
/// computed into `weights` (a reusable scratch buffer — cleared, never
/// shrunk), so selection performs no transient allocation.
fn select_client_partners(
    specs: &[PartnerSpec],
    k: usize,
    rank_frac: f64,
    rng: &mut Rng,
    weights: &mut Vec<f64>,
) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    weights.clear();
    weights.extend(specs.iter().map(|s| {
        if s.weight <= 0.0 || s.bid_rate <= 0.0 {
            return 0.0;
        }
        // Speed bias for top sites (Fig. 13): head publishers pick
        // sub-300ms partners aggressively and avoid the slow tail.
        let speed_bonus = if s.latency_median_ms < 300.0 {
            1.0 + 3.0 * (1.0 - rank_frac)
        } else if s.latency_median_ms > 600.0 {
            0.25 + 0.75 * rank_frac
        } else {
            1.0
        };
        // Tail sites disproportionately use niche partners.
        let niche_bonus = if s.weight < 0.01 {
            1.0 + rank_frac * 1.5
        } else {
            1.0
        };
        s.weight * speed_bonus * niche_bonus
    }));
    for _ in 0..k {
        match rng.weighted_index(weights) {
            Some(i) => {
                chosen.push(i);
                weights[i] = 0.0;
            }
            None => break,
        }
    }
    chosen
}

/// Reusable per-worker derivation buffers. One lives in thread-local
/// storage next to the factory memos; everything transient a site
/// derivation needs — weight working copies, the rendered-page buffer —
/// draws from here, so a memo miss performs near-zero heap allocation
/// beyond the data that escapes into the memoized profile itself.
#[derive(Default)]
pub struct DeriveScratch {
    /// Working copy of whichever weight table is being sampled-without-
    /// replacement right now (waterfall tiers, client partners, s2s pool).
    pub(crate) weights: Vec<f64>,
    /// Rendered publisher-page buffer (reused by the page-HTML memo path).
    pub(crate) page: String,
}

impl DeriveScratch {
    /// Fresh scratch (buffers grow to steady state on first use).
    pub fn new() -> DeriveScratch {
        DeriveScratch::default()
    }
}

/// Precomputed derivation context: the catalog slices plus the weight
/// tables that are pure functions of the catalog. Built once per universe
/// ([`SiteGen`](crate::factory::SiteGen) owns the templates) so per-site
/// derivation copies weights instead of recomputing-and-allocating them.
#[derive(Clone, Copy)]
pub struct DeriveCtx<'a> {
    /// Generation knobs.
    pub cfg: &'a EcosystemConfig,
    /// Partner calibration specs (index = partner id).
    pub specs: &'a [PartnerSpec],
    /// Provider catalog indices with selection weights.
    pub providers: &'a [(usize, f64)],
    /// Catalog indices eligible for providers' s2s pools.
    pub s2s_pool: &'a [usize],
    /// Waterfall-tier selection weights (index = partner id).
    pub wf_weights: &'a [f64],
    /// Provider selection weights (parallel to `providers`).
    pub provider_weights: &'a [f64],
    /// S2s-pool selection weights (parallel to `s2s_pool`).
    pub s2s_weights: &'a [f64],
}

/// Waterfall-tier weight template (pure in the catalog).
pub fn wf_weight_template(specs: &[PartnerSpec]) -> Vec<f64> {
    specs
        .iter()
        .map(|s| if s.bid_rate > 0.0 { s.weight } else { 0.0 })
        .collect()
}

/// Generate the profile of the site at `rank` (convenience wrapper that
/// builds the weight templates and a throwaway scratch; the crawl path
/// goes through [`generate_site_with`] with both reused).
pub fn generate_site(
    cfg: &EcosystemConfig,
    specs: &[PartnerSpec],
    providers: &[(usize, f64)],
    s2s_pool: &[usize],
    rank: u32,
    rng: &mut Rng,
) -> SiteProfile {
    let wf_weights = wf_weight_template(specs);
    let provider_weights: Vec<f64> = providers.iter().map(|(_, w)| *w).collect();
    let s2s_weights: Vec<f64> = s2s_pool.iter().map(|&i| specs[i].weight).collect();
    let ctx = DeriveCtx {
        cfg,
        specs,
        providers,
        s2s_pool,
        wf_weights: &wf_weights,
        provider_weights: &provider_weights,
        s2s_weights: &s2s_weights,
    };
    generate_site_with(&ctx, rank, rng, &mut DeriveScratch::new())
}

/// Generate the profile of the site at `rank`, drawing every transient
/// buffer from `scratch`. RNG consumption (and therefore the derived
/// profile) is identical to [`generate_site`].
pub fn generate_site_with(
    ctx: &DeriveCtx<'_>,
    rank: u32,
    rng: &mut Rng,
    scratch: &mut DeriveScratch,
) -> SiteProfile {
    let cfg = ctx.cfg;
    let specs = ctx.specs;
    let rank_frac = (rank - 1) as f64 / cfg.n_sites.max(1) as f64;
    let domain = site_domain_hstr(rank);
    let adopted = rng.chance(cfg.adoption_for_rank(rank));

    // Page server latency: head sites run fast origins.
    let page_latency_ms = 25.0 + 130.0 * rank_frac + rng.f64_range(0.0, 40.0);
    // Network quality: premium publishers (and their ad paths) sit on
    // better CDN/peering; the long tail pays an RTT premium (Fig. 13).
    let net_quality = 0.68 + 0.55 * rank_frac.powf(0.6) + rng.f64_range(0.0, 0.12);

    // Waterfall chain (every site has one; HB sites may still fall back).
    // The weight table is copied from the per-universe template into the
    // scratch buffer (selection zeroes chosen entries).
    let n_tiers = 2 + rng.index(3);
    let mut waterfall_tier_ids = Vec::with_capacity(n_tiers);
    let wfw = &mut scratch.weights;
    wfw.clear();
    wfw.extend_from_slice(ctx.wf_weights);
    for _ in 0..n_tiers {
        if let Some(i) = rng.weighted_index(wfw) {
            waterfall_tier_ids.push(i);
            wfw[i] = 0.0;
        }
    }

    let direct_order_cpm = if rng.chance(0.25 - 0.15 * rank_frac) {
        Some(rng.f64_range(0.4, 2.0))
    } else {
        None
    };
    let floor = rng.f64_range(0.005, 0.03);

    if !adopted {
        return SiteProfile {
            rank,
            domain,
            facet: None,
            client_partner_ids: Vec::new(),
            provider_id: None,
            s2s_partner_ids: Vec::new(),
            ad_units: Arc::from([AdUnit::new(
                "ad-slot-1",
                hb_adtech::AdSize::MEDIUM_RECT,
                Cpm(floor),
            )]),
            wrapper: WrapperConfig::default(),
            waterfall_tier_ids,
            page_latency_ms,
            net_quality,
            direct_order_cpm,
            floor,
        };
    }

    // Facet selection (paper §4.6: 48 / 34.7 / 17.3).
    let (sv, hy, _cl) = cfg.facet_shares;
    let u = rng.f64();
    let facet = if u < sv {
        HbFacet::ServerSide
    } else if u < sv + hy {
        HbFacet::Hybrid
    } else {
        HbFacet::ClientSide
    };

    // Partners.
    let k = sample_client_partner_count(facet, rng);
    let client_partner_ids =
        select_client_partners(specs, k, rank_frac, rng, &mut scratch.weights);
    let provider_id = match facet {
        HbFacet::ClientSide => None,
        _ => {
            // Read-only draw: the template needs no working copy.
            let pick = rng.weighted_index(ctx.provider_weights).unwrap_or(0);
            Some(ctx.providers[pick].0)
        }
    };
    // The provider's s2s pool for this account: 4-8 exchange partners,
    // weighted by market share so the big exchanges dominate server-side
    // bid volume (Fig. 11).
    let s2s_partner_ids: Vec<usize> = if provider_id.is_some() {
        let n = 4 + rng.index(5);
        let weights = &mut scratch.weights;
        weights.clear();
        weights.extend_from_slice(ctx.s2s_weights);
        let mut chosen = Vec::with_capacity(n);
        for _ in 0..n {
            match rng.weighted_index(weights) {
                Some(j) => {
                    chosen.push(ctx.s2s_pool[j]);
                    weights[j] = 0.0;
                }
                None => break,
            }
        }
        chosen
    } else {
        Vec::new()
    };

    // Ad units (slot codes stack-rendered into inline `HStr`s).
    let mut n_units = sample_unit_count(facet, rng);
    let duplication = if rng.chance(cfg.device_duplication_share) {
        4 + rng.index(3) // device-class duplication (>20-slot oddity)
    } else {
        1
    };
    n_units *= duplication;
    let ad_units: Arc<[AdUnit]> = (0..n_units)
        .map(|i| {
            AdUnit::new(
                HStr::from_display(format_args!("ad-slot-{}", i + 1)),
                sample_size(facet, rng),
                Cpm(floor),
            )
        })
        .collect();

    // Wrapper tuning.
    let uses_late_prone = client_partner_ids.iter().any(|&i| specs[i].late_prone);
    let misconfig_p = cfg.misconfig_base
        + if uses_late_prone {
            cfg.misconfig_late_prone_boost
        } else {
            0.0
        }
        + 0.02 * rank_frac;
    let send_immediately =
        facet != HbFacet::ServerSide && rng.chance(misconfig_p);
    let timeout = if rng.chance(cfg.no_timeout_share * (0.3 + rank_frac)) {
        // Untuned wrappers that wait for everyone live in the long tail.
        None
    } else if uses_late_prone && rng.chance(0.55) {
        // Sites integrating niche partners are the badly tuned ones: their
        // aggressive timeouts are exactly what starves those partners of
        // their bids (Fig. 18's >=50%-late cast).
        Some(SimDuration::from_millis(300 + rng.below(900)))
    } else if rank_frac < 0.15 && rng.chance(0.6) {
        // Premium publishers clamp the auction hard (Fig. 13).
        Some(SimDuration::from_millis(800 + rng.below(1_200)))
    } else if rng.chance(cfg.default_timeout_share) {
        Some(SimDuration::from_millis(3_000))
    } else {
        // Publisher-tuned timeouts skew short; against the slow partners'
        // 600-1300 ms medians this is what produces the partial-late
        // auctions of Fig. 17 and the >=50% late partners of Fig. 18.
        Some(SimDuration::from_millis(400 + rng.below(2_100)))
    };
    let wrapper = WrapperConfig {
        timeout,
        send_immediately,
        pb_granularity: 0.01,
    };

    SiteProfile {
        rank,
        domain,
        facet: Some(facet),
        client_partner_ids,
        provider_id,
        s2s_partner_ids,
        ad_units,
        wrapper,
        waterfall_tier_ids,
        page_latency_ms,
        net_quality,
        direct_order_cpm,
        floor,
    }
}

/// Build the partner references a runtime needs from catalog indices.
pub fn partner_refs(specs: &[PartnerSpec], ids: &[usize]) -> Vec<PartnerRef> {
    ids.iter()
        .map(|&i| PartnerRef {
            code: hb_http::HStr::from_static(specs[i].code),
            name: hb_http::HStr::from_static(specs[i].name),
            host: specs[i].host().into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn setup() -> (EcosystemConfig, Vec<PartnerSpec>, Vec<(usize, f64)>, Vec<usize>) {
        let cfg = EcosystemConfig::paper_scale();
        let specs = catalog::catalog();
        let providers = catalog::providers(&specs);
        let pool = catalog::s2s_pool(&specs);
        (cfg, specs, providers, pool)
    }

    fn gen_many(n: u32) -> Vec<SiteProfile> {
        let (cfg, specs, providers, pool) = setup();
        let root = Rng::new(1234);
        (1..=n)
            .map(|rank| {
                let mut rng = root.derive(rank as u64);
                generate_site(&cfg, &specs, &providers, &pool, rank, &mut rng)
            })
            .collect()
    }

    #[test]
    fn adoption_rate_matches_bands() {
        let sites = gen_many(35_000 / 5); // 7k sites is enough signal
        let adopted = sites.iter().filter(|s| s.facet.is_some()).count();
        let rate = adopted as f64 / sites.len() as f64;
        // First 7k of the ranking: 5k at 22%, 2k at 15% → ~20%.
        assert!((rate - 0.20).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn facet_shares_match_paper() {
        let sites = gen_many(30_000);
        let hb: Vec<&SiteProfile> = sites.iter().filter(|s| s.facet.is_some()).collect();
        let share = |f: HbFacet| {
            hb.iter().filter(|s| s.facet == Some(f)).count() as f64 / hb.len() as f64
        };
        assert!((share(HbFacet::ServerSide) - 0.48).abs() < 0.03);
        assert!((share(HbFacet::Hybrid) - 0.347).abs() < 0.03);
        assert!((share(HbFacet::ClientSide) - 0.173).abs() < 0.03);
    }

    #[test]
    fn partner_count_distribution_fig9() {
        let sites = gen_many(30_000);
        let hb: Vec<&SiteProfile> = sites.iter().filter(|s| s.facet.is_some()).collect();
        let n = hb.len() as f64;
        let count_eq = |k: usize| {
            hb.iter().filter(|s| s.expected_partner_count() == k).count() as f64 / n
        };
        let count_ge = |k: usize| {
            hb.iter().filter(|s| s.expected_partner_count() >= k).count() as f64 / n
        };
        let one = count_eq(1);
        assert!(one > 0.48 && one < 0.58, "P(=1) = {one}");
        let ge5 = count_ge(5);
        assert!(ge5 > 0.14 && ge5 < 0.26, "P(>=5) = {ge5}");
        let ge10 = count_ge(10);
        assert!(ge10 > 0.02 && ge10 < 0.09, "P(>=10) = {ge10}");
        let max = hb
            .iter()
            .map(|s| s.expected_partner_count())
            .max()
            .unwrap();
        assert!(max <= 20, "max partners {max}");
    }

    #[test]
    fn server_side_sites_have_no_client_partners() {
        let sites = gen_many(5_000);
        for s in sites.iter().filter(|s| s.facet == Some(HbFacet::ServerSide)) {
            assert!(s.client_partner_ids.is_empty());
            assert!(s.provider_id.is_some());
            assert!(!s.s2s_partner_ids.is_empty());
            assert!(!s.wrapper.send_immediately, "server-side has no wrapper to misconfigure");
        }
    }

    #[test]
    fn client_side_sites_have_no_provider() {
        let sites = gen_many(5_000);
        for s in sites.iter().filter(|s| s.facet == Some(HbFacet::ClientSide)) {
            assert!(s.provider_id.is_none());
            assert!(!s.client_partner_ids.is_empty());
        }
    }

    #[test]
    fn dfp_dominates_provider_selection() {
        let (_, specs, _, _) = setup();
        let sites = gen_many(30_000);
        let hb_count = sites.iter().filter(|s| s.facet.is_some()).count() as f64;
        let dfp_count = sites
            .iter()
            .filter(|s| {
                s.provider_id
                    .map(|i| specs[i].code == "dfp")
                    .unwrap_or(false)
            })
            .count() as f64;
        let share = dfp_count / hb_count;
        // server+hybrid ≈ 82.7%, DFP 96% of providers → ≈ 79%.
        assert!(share > 0.72 && share < 0.86, "DFP share {share}");
    }

    #[test]
    fn slot_counts_match_fig19() {
        let sites = gen_many(30_000);
        let med = |f: HbFacet| {
            let mut v: Vec<usize> = sites
                .iter()
                .filter(|s| s.facet == Some(f))
                .map(|s| s.ad_units.len())
                .collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let (mc, ms, mh) = (
            med(HbFacet::ClientSide),
            med(HbFacet::ServerSide),
            med(HbFacet::Hybrid),
        );
        assert!((2..=6).contains(&mc), "client median {mc}");
        assert!((2..=6).contains(&ms), "server median {ms}");
        assert!((2..=6).contains(&mh), "hybrid median {mh}");
        assert!(mh >= ms && mh >= mc, "hybrid auctions the most slots");
        // ~3% of HB sites offer more than 20 slots.
        let hb: Vec<&SiteProfile> = sites.iter().filter(|s| s.facet.is_some()).collect();
        let over20 = hb.iter().filter(|s| s.ad_units.len() > 20).count() as f64 / hb.len() as f64;
        assert!(over20 > 0.005 && over20 < 0.06, "P(>20 slots) = {over20}");
    }

    #[test]
    fn determinism_per_rank() {
        let (cfg, specs, providers, pool) = setup();
        let root = Rng::new(77);
        let mut a_rng = root.derive(42);
        let mut b_rng = root.derive(42);
        let a = generate_site(&cfg, &specs, &providers, &pool, 42, &mut a_rng);
        let b = generate_site(&cfg, &specs, &providers, &pool, 42, &mut b_rng);
        assert_eq!(a.domain, b.domain);
        assert_eq!(a.facet, b.facet);
        assert_eq!(a.client_partner_ids, b.client_partner_ids);
        assert_eq!(a.ad_units.len(), b.ad_units.len());
    }

    #[test]
    fn every_site_has_a_waterfall_chain() {
        let sites = gen_many(500);
        for s in &sites {
            assert!(
                (2..=4).contains(&s.waterfall_tier_ids.len()),
                "tiers {}",
                s.waterfall_tier_ids.len()
            );
        }
    }

    #[test]
    fn partner_refs_resolve() {
        let (_, specs, _, _) = setup();
        let refs = partner_refs(&specs, &[1, 2]);
        assert_eq!(refs[0].code, "appnexus");
        assert_eq!(refs[1].name, "Rubicon");
        assert!(refs[0].host.ends_with(".example"));
    }
}
