//! Ad-slot size popularity per HB facet (Figure 21 calibration).
//!
//! The medium rectangle (300x250) dominates every facet, followed by the
//! leaderboard (728x90) and the half page (300x600); a few sizes are
//! facet-specific (e.g. 320x320 / 100x200 / 120x600 appear in the paper's
//! client-side panel).

use hb_adtech::{AdSize, HbFacet};
use hb_simnet::Rng;

/// Weighted size table for one facet.
pub fn size_table(facet: HbFacet) -> Vec<(AdSize, f64)> {
    match facet {
        HbFacet::ServerSide => vec![
            (AdSize::new(300, 250), 0.40),
            (AdSize::new(728, 90), 0.17),
            (AdSize::new(300, 600), 0.11),
            (AdSize::new(320, 50), 0.09),
            (AdSize::new(970, 250), 0.07),
            (AdSize::new(160, 600), 0.05),
            (AdSize::new(336, 280), 0.04),
            (AdSize::new(970, 90), 0.03),
            (AdSize::new(320, 100), 0.02),
            (AdSize::new(468, 60), 0.02),
        ],
        HbFacet::ClientSide => vec![
            (AdSize::new(300, 250), 0.34),
            (AdSize::new(300, 600), 0.16),
            (AdSize::new(728, 90), 0.14),
            (AdSize::new(970, 250), 0.08),
            (AdSize::new(320, 320), 0.07),
            (AdSize::new(320, 50), 0.06),
            (AdSize::new(160, 600), 0.05),
            (AdSize::new(100, 200), 0.04),
            (AdSize::new(120, 600), 0.03),
            (AdSize::new(320, 100), 0.03),
        ],
        HbFacet::Hybrid => vec![
            (AdSize::new(300, 250), 0.38),
            (AdSize::new(728, 90), 0.16),
            (AdSize::new(300, 600), 0.12),
            (AdSize::new(320, 50), 0.08),
            (AdSize::new(970, 250), 0.07),
            (AdSize::new(160, 600), 0.05),
            (AdSize::new(320, 100), 0.04),
            (AdSize::new(336, 280), 0.04),
            (AdSize::new(300, 50), 0.03),
            (AdSize::new(120, 600), 0.03),
        ],
    }
}

/// Sample one size for a slot on a site with the given facet.
pub fn sample_size(facet: HbFacet, rng: &mut Rng) -> AdSize {
    let table = size_table(facet);
    let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
    match rng.weighted_index(&weights) {
        Some(i) => table[i].0,
        None => AdSize::MEDIUM_RECT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_rect_dominates_every_facet() {
        for facet in [HbFacet::ClientSide, HbFacet::ServerSide, HbFacet::Hybrid] {
            let t = size_table(facet);
            let (top, w) = t[0];
            assert_eq!(top, AdSize::MEDIUM_RECT);
            assert!(t.iter().skip(1).all(|(_, ww)| *ww <= w));
        }
    }

    #[test]
    fn tables_are_normalized_ish() {
        for facet in [HbFacet::ClientSide, HbFacet::ServerSide, HbFacet::Hybrid] {
            let total: f64 = size_table(facet).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{facet}: {total}");
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let mut rng = Rng::new(1);
        let n = 20_000;
        let medium = (0..n)
            .filter(|_| sample_size(HbFacet::ServerSide, &mut rng) == AdSize::MEDIUM_RECT)
            .count();
        let frac = medium as f64 / n as f64;
        assert!((frac - 0.40).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn client_panel_has_facet_specific_sizes() {
        let t = size_table(HbFacet::ClientSide);
        assert!(t.iter().any(|(s, _)| *s == AdSize::new(320, 320)));
        assert!(t.iter().any(|(s, _)| *s == AdSize::new(100, 200)));
    }
}
