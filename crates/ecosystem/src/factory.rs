//! Lazy universe generation: any site profile derived purely from
//! `(seed, rank)`.
//!
//! [`Ecosystem::generate`](crate::Ecosystem::generate) used to materialize
//! every [`SiteProfile`], every publisher page, and every per-site endpoint
//! up front — O(toplist) work and memory before the first visit. The
//! factory inverts that: [`SiteGen`] is the pure derivation core (a site's
//! RNG stream hangs off `root.derive(rank)`, so any rank is reachable in
//! O(1)), and [`SiteFactory`] wires it into a *lazy world* whose router
//! and latency directory synthesize publisher endpoints on demand from the
//! hostname alone. Total cost becomes O(sites actually visited), which is
//! what lets a shard of a million-rank toplist crawl its slice without
//! paying for the other 999 shards.
//!
//! Determinism: every endpoint is a pure function of `(request, rng)`, and
//! the lazily derived profiles/accounts/latency models are byte-identical
//! to what the eager [`build_world`](crate::world::build_world) would have
//! registered, so visits simulate identically on either world.

use crate::catalog::{self, PartnerSpec};
use crate::config::EcosystemConfig;
use crate::publisher::{self, DeriveCtx, DeriveScratch, SiteProfile};
use crate::world::{self, RuntimeCtx};
use hb_adtech::{AdServerAccount, HostDirectory, Net, PartnerProfile};
use hb_core::PartnerList;
use hb_http::Router;
use hb_simnet::{FaultInjector, FxHashMap, Rng};
use std::cell::RefCell;
use std::sync::{Arc, RwLock};

/// Shard count of the concurrent derivation memos (power of two; a rank
/// maps to shard `rank & (MEMO_SHARDS - 1)`, so the contiguous rank
/// blocks campaign workers claim land on different shards and readers
/// almost never contend on the same lock).
const MEMO_SHARDS: usize = 16;

/// Per-shard entry cap. The memo is shared by every worker for the life
/// of the universe, so it must stay bounded: adoption sweeps over huge
/// toplists (`campaign/cold_sweep` walks fresh ranks forever) would
/// otherwise grow it without limit. When a shard fills up it is simply
/// cleared — derivation is pure in `(seed, rank)`, so eviction can never
/// change bytes, only cost a re-derivation. 16 shards × 512 entries keeps
/// every bench scale and the daily-revisit working set of a medium crawl
/// fully resident.
const MEMO_SHARD_CAP: usize = 512;

/// A sharded concurrent memo keyed by rank, shared by every worker of a
/// universe: one derivation serves all threads, so a cold rank is paid
/// once per campaign instead of once per worker thread (the per-thread
/// LRUs this replaces re-derived every hot site N times under N workers).
///
/// Reads take a shard read lock and clone the value (`Arc`/`HStr` —
/// pointer clones). A miss derives *outside* any lock, then publishes
/// under the shard write lock with first-insert-wins: every caller gets a
/// clone of the resident value, so concurrent derivations of the same
/// rank always resolve to pointer-equal handles, never torn values.
struct ShardedMemo<T> {
    shards: Vec<RwLock<FxHashMap<u32, T>>>,
}

impl<T: Clone> ShardedMemo<T> {
    fn new() -> ShardedMemo<T> {
        ShardedMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, rank: u32) -> &RwLock<FxHashMap<u32, T>> {
        &self.shards[rank as usize & (MEMO_SHARDS - 1)]
    }

    /// Fetch `rank`, deriving and publishing on miss. Whoever publishes
    /// first wins; late derivers drop their value and return the winner's.
    fn get_or_insert_with(&self, rank: u32, derive: impl FnOnce() -> T) -> T {
        let shard = self.shard(rank);
        if let Some(hit) = shard.read().expect("memo shard poisoned").get(&rank) {
            return hit.clone();
        }
        // Derive outside the lock: a slow derivation must not block
        // readers of the other ~511 ranks on this shard.
        let value = derive();
        let mut map = shard.write().expect("memo shard poisoned");
        if map.len() >= MEMO_SHARD_CAP && !map.contains_key(&rank) {
            map.clear();
        }
        map.entry(rank).or_insert(value).clone()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("memo shard poisoned").clear();
        }
    }
}

/// The four derivation memos of one universe, shared across its workers.
/// Owned by [`SiteGen`], so the `(universe, rank)` keying of the old
/// thread-local memos is implicit — dropping the factory drops its memo,
/// and universes can never serve each other's profiles.
struct DerivationMemo {
    site: ShardedMemo<Arc<SiteProfile>>,
    account: ShardedMemo<Arc<AdServerAccount>>,
    runtime: ShardedMemo<Arc<hb_adtech::SiteRuntime>>,
    /// Rendered page HTML, stored as `HStr` (`Arc<str>` at this length):
    /// serving the page is a pointer clone. By far the most expensive
    /// derivation to repeat per visit.
    page_html: ShardedMemo<hb_http::HStr>,
}

impl DerivationMemo {
    fn new() -> DerivationMemo {
        DerivationMemo {
            site: ShardedMemo::new(),
            account: ShardedMemo::new(),
            runtime: ShardedMemo::new(),
            page_html: ShardedMemo::new(),
        }
    }

    fn clear(&self) {
        self.site.clear();
        self.account.clear();
        self.runtime.clear();
        self.page_html.clear();
    }
}

thread_local! {
    /// Per-worker derivation buffers (weight working copies, the rendered-
    /// page buffer). A memo miss draws its transient storage from here, so
    /// cold derivation — the adoption-sweep hot path, where every rank is
    /// seen for the first time — stops paying per-site allocation churn.
    /// These are transient buffers (nothing derived is kept here), so they
    /// stay thread-local while the memos themselves are shared.
    static DERIVE_SCRATCH: RefCell<DeriveScratch> = RefCell::new(DeriveScratch::new());
}

/// The pure site-derivation core: everything needed to compute the profile
/// of any rank, with no per-site state.
pub struct SiteGen {
    /// Generation knobs (seed, toplist size, adoption bands, …).
    pub config: EcosystemConfig,
    /// Partner calibration specs (index = partner id).
    pub specs: Vec<PartnerSpec>,
    /// Partner runtime profiles (index = partner id).
    pub profiles: Vec<PartnerProfile>,
    /// `Arc`-shared profile table: derived ad-server accounts reference
    /// these instead of deep-cloning the s2s pool per account.
    profiles_shared: Vec<Arc<PartnerProfile>>,
    providers: Vec<(usize, f64)>,
    s2s_pool: Vec<usize>,
    // Weight templates + runtime tables, pure in the catalog: built once
    // so per-site derivation copies instead of recomputing-and-allocating.
    wf_weights: Vec<f64>,
    provider_weights: Vec<f64>,
    s2s_weights: Vec<f64>,
    runtime_ctx: RuntimeCtx,
    root: Rng,
    /// The universe's shared derivation memo: one `Arc` per derived
    /// site/account/runtime/page, served to every worker thread.
    memo: DerivationMemo,
}

impl SiteGen {
    /// Build the derivation core for a configuration.
    pub fn new(config: EcosystemConfig) -> SiteGen {
        let specs = catalog::catalog();
        let profiles = catalog::profiles(&specs);
        let profiles_shared = profiles.iter().cloned().map(Arc::new).collect();
        let providers = catalog::providers(&specs);
        let s2s_pool = catalog::s2s_pool(&specs);
        let wf_weights = publisher::wf_weight_template(&specs);
        let provider_weights = providers.iter().map(|(_, w)| *w).collect();
        let s2s_weights = s2s_pool.iter().map(|&i| specs[i].weight).collect();
        let runtime_ctx =
            RuntimeCtx::new(&specs).with_robustness(config.scenario.robustness.clone());
        let root = Rng::new(config.seed).derive_str("site-profiles");
        SiteGen {
            config,
            specs,
            profiles,
            profiles_shared,
            providers,
            s2s_pool,
            wf_weights,
            provider_weights,
            s2s_weights,
            runtime_ctx,
            root,
            memo: DerivationMemo::new(),
        }
    }

    /// The precomputed derivation context over this universe's catalog.
    fn derive_ctx(&self) -> DeriveCtx<'_> {
        DeriveCtx {
            cfg: &self.config,
            specs: &self.specs,
            providers: &self.providers,
            s2s_pool: &self.s2s_pool,
            wf_weights: &self.wf_weights,
            provider_weights: &self.provider_weights,
            s2s_weights: &self.s2s_weights,
        }
    }

    /// [`SiteGen::site`] through the universe's shared concurrent memo:
    /// repeated lookups of the same rank — in-visit lazy resolution, daily
    /// revisits, *and other workers' visits* — cost one derivation total.
    pub fn site_shared(&self, rank: u32) -> Arc<SiteProfile> {
        self.memo
            .site
            .get_or_insert_with(rank, || Arc::new(self.site(rank)))
    }

    /// The site's ad-server account, through the shared memo. The
    /// scenario's mediator robustness (s2s deadline + retry backoff) is
    /// stamped on here, so every lazily resolved account carries the
    /// campaign's policy.
    pub fn account_shared(&self, rank: u32) -> Arc<AdServerAccount> {
        self.memo.account.get_or_insert_with(rank, || {
            let mut account = world::account_for(&self.site_shared(rank), &self.profiles_shared);
            let policy = &self.config.scenario.robustness;
            account.s2s_deadline = policy.s2s_deadline;
            account.s2s_retry_backoff = policy.retry_backoff;
            Arc::new(account)
        })
    }

    /// The shared per-visit runtime for `rank`, through the shared memo.
    /// Flows hold this by `Arc`, so starting a visit never rebuilds ad
    /// units, partner refs or waterfall tiers for a memoized rank; a memo
    /// miss builds it from the precomputed [`RuntimeCtx`] tables, once,
    /// for every worker.
    pub fn runtime_shared(&self, rank: u32) -> Arc<hb_adtech::SiteRuntime> {
        self.memo.runtime.get_or_insert_with(rank, || {
            Arc::new(world::site_runtime_with(
                &self.site_shared(rank),
                &self.runtime_ctx,
            ))
        })
    }

    /// The site's rendered page HTML, through the shared memo. A miss
    /// renders into the deriving thread's reusable page buffer; only the
    /// final `Arc<str>` the memo retains is allocated.
    pub fn page_html_shared(&self, rank: u32) -> hb_http::HStr {
        self.memo.page_html.get_or_insert_with(rank, || {
            let site = self.site_shared(rank);
            DERIVE_SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                world::render_page_html(&site, &self.specs, &mut scratch.page);
                hb_http::HStr::from(scratch.page.as_str())
            })
        })
    }

    /// Drop every entry of this universe's shared derivation memo (site,
    /// account, runtime, page HTML). Benches and allocation tests use
    /// this to measure the true memo-miss (cold) path, and the
    /// determinism suite uses it to prove eviction is behaviour-free;
    /// production code never needs it — a full shard simply recycles
    /// itself. Clearing mid-campaign only costs re-derivations (pure in
    /// `(seed, rank)`), never changes bytes.
    pub fn clear_memos(&self) {
        self.memo.clear();
    }

    /// Derive the profile of the site at 1-based `rank`. O(1) in the
    /// toplist size; identical to what the eager generator produces for
    /// the same `(seed, rank)`. Transient buffers come from the thread's
    /// [`DeriveScratch`], so a cold derivation allocates only what escapes
    /// into the profile.
    pub fn site(&self, rank: u32) -> SiteProfile {
        let mut rng = self.root.derive(rank as u64);
        DERIVE_SCRATCH.with(|s| {
            publisher::generate_site_with(
                &self.derive_ctx(),
                rank,
                &mut rng,
                &mut s.borrow_mut(),
            )
        })
    }

    /// Build a (non-memoized) per-visit runtime for a site profile from
    /// the precomputed tables.
    pub fn runtime_for(&self, site: &SiteProfile) -> hb_adtech::SiteRuntime {
        world::site_runtime_with(site, &self.runtime_ctx)
    }

    /// Parse a publisher page host (`pub{rank}.example`) back to its rank;
    /// `None` for hosts outside the configured toplist.
    pub fn rank_of_page_host(&self, host: &str) -> Option<u32> {
        let digits = host.strip_prefix("pub")?.strip_suffix(".example")?;
        if digits.is_empty() || (digits.len() > 1 && digits.starts_with('0')) {
            return None;
        }
        let rank: u32 = digits.parse().ok()?;
        (rank >= 1 && rank <= self.config.n_sites).then_some(rank)
    }

    /// Parse an ad-server account id (`pub-{rank}`) back to its rank.
    pub fn rank_of_account(&self, account_id: &str) -> Option<u32> {
        let digits = account_id.strip_prefix("pub-")?;
        if digits.is_empty() || (digits.len() > 1 && digits.starts_with('0')) {
            return None;
        }
        let rank: u32 = digits.parse().ok()?;
        (rank >= 1 && rank <= self.config.n_sites).then_some(rank)
    }
}

/// On-demand universe: the derivation core plus the lazy simulated
/// Internet. Everything a crawl shard needs, at O(1) construction cost in
/// the toplist size.
pub struct SiteFactory {
    gen: Arc<SiteGen>,
    router: Arc<Router>,
    latency: Arc<HostDirectory>,
    faults: Arc<FaultInjector>,
    /// Per-day fault injectors (index = sim-day), present only when the
    /// scenario schedules outage windows. Each is the ambient injector
    /// plus the outages active that day, built once up front so
    /// [`SiteFactory::net_for_day`] is a pair of `Arc` clones on the
    /// visit path.
    faults_by_day: Vec<Arc<FaultInjector>>,
    detector_list: Arc<PartnerList>,
}

impl SiteFactory {
    /// Build the factory (registers the 84 partner endpoints, providers
    /// and CDN eagerly — O(catalog), not O(toplist)).
    pub fn new(config: EcosystemConfig) -> SiteFactory {
        let gen = Arc::new(SiteGen::new(config));
        let mut world = world::build_lazy_world(&gen);
        let detector_list = Arc::new(catalog::partner_list(&gen.specs));
        let scenario = &gen.config.scenario;
        // Degraded links override the affected hosts' latency models for
        // the whole campaign (every day, every worker).
        for (host, model) in &scenario.degraded_links {
            world.latency.insert(host.clone(), model.clone());
        }
        let mut faults = FaultInjector::none()
            .with_drop_chance(gen.config.drop_chance)
            .with_slowdown(
                gen.config.slow_chance,
                hb_simnet::Dist::log_normal_median(350.0, 0.7).clamped(50.0, 12_000.0),
            );
        // Ambient per-host loss profiles apply on every day.
        for (host, profile) in &scenario.host_profiles {
            faults.set_host_profile(host.clone(), profile.clone());
        }
        // Scheduled outages vary by day: precompute one injector per
        // sim-day (days are a small constant; sites are not).
        let faults_by_day: Vec<Arc<FaultInjector>> = if scenario.has_outages() {
            (0..=gen.config.crawl_days)
                .map(|day| Arc::new(scenario.injector_for_day(&faults, day)))
                .collect()
        } else {
            Vec::new()
        };
        SiteFactory {
            gen,
            router: Arc::new(world.router),
            latency: Arc::new(world.latency),
            faults: Arc::new(faults),
            faults_by_day,
            detector_list,
        }
    }

    /// The configuration this universe derives from.
    pub fn config(&self) -> &EcosystemConfig {
        &self.gen.config
    }

    /// Partner calibration specs.
    pub fn specs(&self) -> &[PartnerSpec] {
        &self.gen.specs
    }

    /// Partner runtime profiles.
    pub fn profiles(&self) -> &[PartnerProfile] {
        &self.gen.profiles
    }

    /// The shared derivation core.
    pub fn gen(&self) -> &Arc<SiteGen> {
        &self.gen
    }

    /// Clear the universe's shared derivation memo (measurement hook; see
    /// [`SiteGen::clear_memos`]).
    pub fn clear_memos(&self) {
        self.gen.clear_memos();
    }

    /// Derive the profile of the site at 1-based `rank` (O(1)).
    pub fn site(&self, rank: u32) -> SiteProfile {
        self.gen.site(rank)
    }

    /// Derive (or reuse, via the universe's shared memo) the shared
    /// profile of the site at 1-based `rank`. Prefer this on crawl paths:
    /// the lazy world's endpoint and latency lookups for the same rank
    /// then hit the memo instead of re-deriving.
    pub fn site_shared(&self, rank: u32) -> Arc<SiteProfile> {
        self.gen.site_shared(rank)
    }

    /// The network handle visits connect through.
    pub fn net(&self) -> Net {
        Net::new(
            self.router.clone(),
            self.latency.clone(),
            self.faults.clone(),
        )
    }

    /// The network handle for a specific sim-day: identical to
    /// [`SiteFactory::net`] unless the scenario schedules outage windows,
    /// in which case the day's injector carries the outages active that
    /// day. Deterministic in `day` alone, so shards and workers agree.
    pub fn net_for_day(&self, day: u32) -> Net {
        let faults = self
            .faults_by_day
            .get(day as usize)
            .cloned()
            .unwrap_or_else(|| self.faults.clone());
        Net::new(self.router.clone(), self.latency.clone(), faults)
    }

    /// Shared router handle (lazy publisher resolution).
    pub fn router(&self) -> Arc<Router> {
        self.router.clone()
    }

    /// Shared latency directory handle.
    pub fn latency(&self) -> Arc<HostDirectory> {
        self.latency.clone()
    }

    /// Shared fault injector handle.
    pub fn faults(&self) -> Arc<FaultInjector> {
        self.faults.clone()
    }

    /// The detector's partner list (built once, cloning is two atomic ops).
    pub fn partner_list(&self) -> Arc<PartnerList> {
        self.detector_list.clone()
    }

    /// The per-visit runtime for a site profile (precomputed tables; no
    /// hostname re-rendering).
    pub fn runtime_for(&self, site: &SiteProfile) -> hb_adtech::SiteRuntime {
        self.gen.runtime_for(site)
    }

    /// The shared per-visit runtime for `rank` through the universe's
    /// shared concurrent memo — the crawl path's entry point (one
    /// derivation serves every worker).
    pub fn runtime_shared(&self, rank: u32) -> Arc<hb_adtech::SiteRuntime> {
        self.gen.runtime_shared(rank)
    }

    /// Derive the deterministic RNG stream for a `(site, day)` visit.
    pub fn visit_rng(&self, rank: u32, day: u32) -> Rng {
        Rng::new(self.gen.config.seed)
            .derive_str("visits")
            .derive(rank as u64)
            .derive(day as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_factory() -> SiteFactory {
        SiteFactory::new(EcosystemConfig::tiny_scale())
    }

    #[test]
    fn any_rank_derivable_in_isolation() {
        let f = tiny_factory();
        let s = f.site(137);
        assert_eq!(s.rank, 137);
        assert_eq!(s.domain, "pub137.example");
    }

    #[test]
    fn derivation_is_order_independent() {
        let f = tiny_factory();
        let late_first = (f.site(200), f.site(1));
        let g = tiny_factory();
        let early_first = (g.site(1), g.site(200));
        assert_eq!(late_first.0.domain, early_first.1.domain);
        assert_eq!(late_first.0.facet, early_first.1.facet);
        assert_eq!(late_first.1.client_partner_ids, early_first.0.client_partner_ids);
    }

    #[test]
    fn million_rank_toplist_is_o1_per_site() {
        // The point of laziness: a huge toplist costs nothing until a
        // rank is actually requested.
        let f = SiteFactory::new(EcosystemConfig::paper_scale().with_sites(1_000_000));
        let s = f.site(999_999);
        assert_eq!(s.rank, 999_999);
        assert!(f.net().router.resolve("pub999999.example").is_some());
    }

    #[test]
    fn host_and_account_parsing() {
        let f = tiny_factory();
        let g = f.gen();
        assert_eq!(g.rank_of_page_host("pub7.example"), Some(7));
        assert_eq!(g.rank_of_page_host("pub0.example"), None);
        assert_eq!(g.rank_of_page_host("pub201.example"), None, "beyond toplist");
        assert_eq!(g.rank_of_page_host("pub07.example"), None, "leading zero");
        assert_eq!(g.rank_of_page_host("pub7x.example"), None);
        assert_eq!(g.rank_of_page_host("ads.pub7.example"), None);
        assert_eq!(g.rank_of_account("pub-7"), Some(7));
        assert_eq!(g.rank_of_account("pub-"), None);
        assert_eq!(g.rank_of_account("ghost"), None);
    }

    #[test]
    fn lazy_net_serves_publisher_hosts_on_demand() {
        let f = tiny_factory();
        let net = f.net();
        assert!(net.router.resolve("pub1.example").is_some());
        assert!(net.router.resolve("appnexus-adnet.example").is_some());
        assert!(net.router.resolve(crate::world::CDN_HOST).is_some());
        let mut rng = Rng::new(3);
        let sample = net.latency.lookup("pub1.example").sample(&mut rng);
        assert!(sample.as_micros() > 0);
    }
}
