//! Lazy universe generation: any site profile derived purely from
//! `(seed, rank)`.
//!
//! [`Ecosystem::generate`](crate::Ecosystem::generate) used to materialize
//! every [`SiteProfile`], every publisher page, and every per-site endpoint
//! up front — O(toplist) work and memory before the first visit. The
//! factory inverts that: [`SiteGen`] is the pure derivation core (a site's
//! RNG stream hangs off `root.derive(rank)`, so any rank is reachable in
//! O(1)), and [`SiteFactory`] wires it into a *lazy world* whose router
//! and latency directory synthesize publisher endpoints on demand from the
//! hostname alone. Total cost becomes O(sites actually visited), which is
//! what lets a shard of a million-rank toplist crawl its slice without
//! paying for the other 999 shards.
//!
//! Determinism: every endpoint is a pure function of `(request, rng)`, and
//! the lazily derived profiles/accounts/latency models are byte-identical
//! to what the eager [`build_world`](crate::world::build_world) would have
//! registered, so visits simulate identically on either world.

use crate::catalog::{self, PartnerSpec};
use crate::config::EcosystemConfig;
use crate::publisher::{self, DeriveCtx, DeriveScratch, SiteProfile};
use crate::world::{self, RuntimeCtx};
use hb_adtech::{AdServerAccount, HostDirectory, Net, PartnerProfile};
use hb_core::PartnerList;
use hb_http::Router;
use hb_simnet::{FaultInjector, Rng};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguishes derivation cores so thread-local memos never serve a
/// profile from another universe (tests routinely hold several).
static NEXT_UNIVERSE_ID: AtomicU64 = AtomicU64::new(0);

/// Capacity of the per-thread derivation memos. Sized for the access
/// pattern of a crawl worker: all lookups of one visit hit the same rank,
/// but daily revisits and interleaved-rank benches bounce between a small
/// working set of ranks — a handful of extra slots turns those bounces
/// from re-derivations into list hits. Lookup is a linear scan with
/// move-to-front, so the capacity must stay small enough that a scan is
/// cheaper than a re-derivation by orders of magnitude.
const MEMO_CAP: usize = 16;

/// A tiny per-thread LRU: move-to-front vector keyed `(universe, rank)`.
struct Lru<T> {
    entries: Vec<(u64, u32, T)>,
}

impl<T: Clone> Lru<T> {
    const fn new() -> Lru<T> {
        Lru { entries: Vec::new() }
    }

    /// Fetch `(uid, rank)`, deriving and inserting on miss. The hit is
    /// moved to the front; the coldest entry falls off the end.
    fn get_or_insert_with(&mut self, uid: u64, rank: u32, derive: impl FnOnce() -> T) -> T {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|(u, r, _)| *u == uid && *r == rank)
        {
            let hit = self.entries.remove(pos);
            let value = hit.2.clone();
            self.entries.insert(0, hit);
            return value;
        }
        let value = derive();
        if self.entries.len() == MEMO_CAP {
            self.entries.pop();
        }
        self.entries.insert(0, (uid, rank, value.clone()));
        value
    }
}

thread_local! {
    /// Per-thread LRU of derived site profiles. A visit is simulated
    /// synchronously on one thread and every lazy lookup it triggers
    /// (page endpoint, latency model, ad-server account) targets the same
    /// rank, so the front slot absorbs the in-visit pattern; the deeper
    /// slots keep interleaved-rank days (and benches that revisit a site)
    /// from re-deriving profiles. O(MEMO_CAP) memory, no locks — the
    /// O(sites visited) cost bound of the lazy universe is preserved.
    static SITE_MEMO: RefCell<Lru<Arc<SiteProfile>>> = const { RefCell::new(Lru::new()) };
    /// Same idea for the derived ad-server account (spares the per-request
    /// s2s partner-profile clones).
    static ACCOUNT_MEMO: RefCell<Lru<Arc<AdServerAccount>>> = const { RefCell::new(Lru::new()) };
    /// And for the per-visit runtime: the crawler starts every visit from
    /// the shared runtime handle, so revisits (daily recrawls, benches)
    /// skip the ad-unit/partner-list assembly entirely.
    static RUNTIME_MEMO: RefCell<Lru<Arc<hb_adtech::SiteRuntime>>> =
        const { RefCell::new(Lru::new()) };
    /// And for the rendered page HTML: every visit's first request fetches
    /// the page, and assembling the document is pure in `(seed, rank)` —
    /// by far the most expensive lazy derivation to repeat per visit.
    /// Stored as `HStr` (`Arc<str>` at this length), so serving the page
    /// is a pointer clone.
    static PAGE_HTML_MEMO: RefCell<Lru<hb_http::HStr>> = const { RefCell::new(Lru::new()) };
    /// Per-worker derivation buffers (weight working copies, the rendered-
    /// page buffer). A memo miss draws its transient storage from here, so
    /// cold derivation — the adoption-sweep hot path, where every rank is
    /// seen for the first time — stops paying per-site allocation churn.
    static DERIVE_SCRATCH: RefCell<DeriveScratch> = RefCell::new(DeriveScratch::new());
}

/// Clear this thread's derivation memos (site, account, runtime, page
/// HTML). Benches and allocation tests use this to measure the true
/// memo-miss (cold) path; production code never needs it — stale entries
/// simply age out of the LRUs.
pub fn clear_thread_memos() {
    SITE_MEMO.with(|m| m.borrow_mut().entries.clear());
    ACCOUNT_MEMO.with(|m| m.borrow_mut().entries.clear());
    RUNTIME_MEMO.with(|m| m.borrow_mut().entries.clear());
    PAGE_HTML_MEMO.with(|m| m.borrow_mut().entries.clear());
}

/// The pure site-derivation core: everything needed to compute the profile
/// of any rank, with no per-site state.
pub struct SiteGen {
    /// Generation knobs (seed, toplist size, adoption bands, …).
    pub config: EcosystemConfig,
    /// Partner calibration specs (index = partner id).
    pub specs: Vec<PartnerSpec>,
    /// Partner runtime profiles (index = partner id).
    pub profiles: Vec<PartnerProfile>,
    /// `Arc`-shared profile table: derived ad-server accounts reference
    /// these instead of deep-cloning the s2s pool per account.
    profiles_shared: Vec<Arc<PartnerProfile>>,
    providers: Vec<(usize, f64)>,
    s2s_pool: Vec<usize>,
    // Weight templates + runtime tables, pure in the catalog: built once
    // so per-site derivation copies instead of recomputing-and-allocating.
    wf_weights: Vec<f64>,
    provider_weights: Vec<f64>,
    s2s_weights: Vec<f64>,
    runtime_ctx: RuntimeCtx,
    root: Rng,
    universe_id: u64,
}

impl SiteGen {
    /// Build the derivation core for a configuration.
    pub fn new(config: EcosystemConfig) -> SiteGen {
        let specs = catalog::catalog();
        let profiles = catalog::profiles(&specs);
        let profiles_shared = profiles.iter().cloned().map(Arc::new).collect();
        let providers = catalog::providers(&specs);
        let s2s_pool = catalog::s2s_pool(&specs);
        let wf_weights = publisher::wf_weight_template(&specs);
        let provider_weights = providers.iter().map(|(_, w)| *w).collect();
        let s2s_weights = s2s_pool.iter().map(|&i| specs[i].weight).collect();
        let runtime_ctx =
            RuntimeCtx::new(&specs).with_robustness(config.scenario.robustness.clone());
        let root = Rng::new(config.seed).derive_str("site-profiles");
        SiteGen {
            config,
            specs,
            profiles,
            profiles_shared,
            providers,
            s2s_pool,
            wf_weights,
            provider_weights,
            s2s_weights,
            runtime_ctx,
            root,
            universe_id: NEXT_UNIVERSE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The precomputed derivation context over this universe's catalog.
    fn derive_ctx(&self) -> DeriveCtx<'_> {
        DeriveCtx {
            cfg: &self.config,
            specs: &self.specs,
            providers: &self.providers,
            s2s_pool: &self.s2s_pool,
            wf_weights: &self.wf_weights,
            provider_weights: &self.provider_weights,
            s2s_weights: &self.s2s_weights,
        }
    }

    /// [`SiteGen::site`] through the per-thread LRU memo: repeated lookups
    /// of the same rank on one thread (the in-visit pattern, daily
    /// revisits) cost one derivation.
    pub fn site_shared(&self, rank: u32) -> Arc<SiteProfile> {
        SITE_MEMO.with(|m| {
            m.borrow_mut()
                .get_or_insert_with(self.universe_id, rank, || Arc::new(self.site(rank)))
        })
    }

    /// The site's ad-server account, through the per-thread memo. The
    /// scenario's mediator robustness (s2s deadline + retry backoff) is
    /// stamped on here, so every lazily resolved account carries the
    /// campaign's policy.
    pub fn account_shared(&self, rank: u32) -> Arc<AdServerAccount> {
        ACCOUNT_MEMO.with(|m| {
            m.borrow_mut().get_or_insert_with(self.universe_id, rank, || {
                let mut account =
                    world::account_for(&self.site_shared(rank), &self.profiles_shared);
                let policy = &self.config.scenario.robustness;
                account.s2s_deadline = policy.s2s_deadline;
                account.s2s_retry_backoff = policy.retry_backoff;
                Arc::new(account)
            })
        })
    }

    /// The shared per-visit runtime for `rank`, through the per-thread
    /// memo. Flows hold this by `Arc`, so starting a visit never rebuilds
    /// ad units, partner refs or waterfall tiers for a memoized rank; a
    /// memo miss builds it from the precomputed [`RuntimeCtx`] tables.
    pub fn runtime_shared(&self, rank: u32) -> Arc<hb_adtech::SiteRuntime> {
        RUNTIME_MEMO.with(|m| {
            m.borrow_mut().get_or_insert_with(self.universe_id, rank, || {
                Arc::new(world::site_runtime_with(
                    &self.site_shared(rank),
                    &self.runtime_ctx,
                ))
            })
        })
    }

    /// The site's rendered page HTML, through the per-thread memo. A miss
    /// renders into the thread's reusable page buffer; only the final
    /// `Arc<str>` the memo retains is allocated.
    pub fn page_html_shared(&self, rank: u32) -> hb_http::HStr {
        PAGE_HTML_MEMO.with(|m| {
            m.borrow_mut().get_or_insert_with(self.universe_id, rank, || {
                let site = self.site_shared(rank);
                DERIVE_SCRATCH.with(|s| {
                    let scratch = &mut *s.borrow_mut();
                    world::render_page_html(&site, &self.specs, &mut scratch.page);
                    hb_http::HStr::from(scratch.page.as_str())
                })
            })
        })
    }

    /// Derive the profile of the site at 1-based `rank`. O(1) in the
    /// toplist size; identical to what the eager generator produces for
    /// the same `(seed, rank)`. Transient buffers come from the thread's
    /// [`DeriveScratch`], so a cold derivation allocates only what escapes
    /// into the profile.
    pub fn site(&self, rank: u32) -> SiteProfile {
        let mut rng = self.root.derive(rank as u64);
        DERIVE_SCRATCH.with(|s| {
            publisher::generate_site_with(
                &self.derive_ctx(),
                rank,
                &mut rng,
                &mut s.borrow_mut(),
            )
        })
    }

    /// Build a (non-memoized) per-visit runtime for a site profile from
    /// the precomputed tables.
    pub fn runtime_for(&self, site: &SiteProfile) -> hb_adtech::SiteRuntime {
        world::site_runtime_with(site, &self.runtime_ctx)
    }

    /// Parse a publisher page host (`pub{rank}.example`) back to its rank;
    /// `None` for hosts outside the configured toplist.
    pub fn rank_of_page_host(&self, host: &str) -> Option<u32> {
        let digits = host.strip_prefix("pub")?.strip_suffix(".example")?;
        if digits.is_empty() || (digits.len() > 1 && digits.starts_with('0')) {
            return None;
        }
        let rank: u32 = digits.parse().ok()?;
        (rank >= 1 && rank <= self.config.n_sites).then_some(rank)
    }

    /// Parse an ad-server account id (`pub-{rank}`) back to its rank.
    pub fn rank_of_account(&self, account_id: &str) -> Option<u32> {
        let digits = account_id.strip_prefix("pub-")?;
        if digits.is_empty() || (digits.len() > 1 && digits.starts_with('0')) {
            return None;
        }
        let rank: u32 = digits.parse().ok()?;
        (rank >= 1 && rank <= self.config.n_sites).then_some(rank)
    }
}

/// On-demand universe: the derivation core plus the lazy simulated
/// Internet. Everything a crawl shard needs, at O(1) construction cost in
/// the toplist size.
pub struct SiteFactory {
    gen: Arc<SiteGen>,
    router: Arc<Router>,
    latency: Arc<HostDirectory>,
    faults: Arc<FaultInjector>,
    /// Per-day fault injectors (index = sim-day), present only when the
    /// scenario schedules outage windows. Each is the ambient injector
    /// plus the outages active that day, built once up front so
    /// [`SiteFactory::net_for_day`] is a pair of `Arc` clones on the
    /// visit path.
    faults_by_day: Vec<Arc<FaultInjector>>,
    detector_list: Arc<PartnerList>,
}

impl SiteFactory {
    /// Build the factory (registers the 84 partner endpoints, providers
    /// and CDN eagerly — O(catalog), not O(toplist)).
    pub fn new(config: EcosystemConfig) -> SiteFactory {
        let gen = Arc::new(SiteGen::new(config));
        let mut world = world::build_lazy_world(&gen);
        let detector_list = Arc::new(catalog::partner_list(&gen.specs));
        let scenario = &gen.config.scenario;
        // Degraded links override the affected hosts' latency models for
        // the whole campaign (every day, every worker).
        for (host, model) in &scenario.degraded_links {
            world.latency.insert(host.clone(), model.clone());
        }
        let mut faults = FaultInjector::none()
            .with_drop_chance(gen.config.drop_chance)
            .with_slowdown(
                gen.config.slow_chance,
                hb_simnet::Dist::log_normal_median(350.0, 0.7).clamped(50.0, 12_000.0),
            );
        // Ambient per-host loss profiles apply on every day.
        for (host, profile) in &scenario.host_profiles {
            faults.set_host_profile(host.clone(), profile.clone());
        }
        // Scheduled outages vary by day: precompute one injector per
        // sim-day (days are a small constant; sites are not).
        let faults_by_day: Vec<Arc<FaultInjector>> = if scenario.has_outages() {
            (0..=gen.config.crawl_days)
                .map(|day| Arc::new(scenario.injector_for_day(&faults, day)))
                .collect()
        } else {
            Vec::new()
        };
        SiteFactory {
            gen,
            router: Arc::new(world.router),
            latency: Arc::new(world.latency),
            faults: Arc::new(faults),
            faults_by_day,
            detector_list,
        }
    }

    /// The configuration this universe derives from.
    pub fn config(&self) -> &EcosystemConfig {
        &self.gen.config
    }

    /// Partner calibration specs.
    pub fn specs(&self) -> &[PartnerSpec] {
        &self.gen.specs
    }

    /// Partner runtime profiles.
    pub fn profiles(&self) -> &[PartnerProfile] {
        &self.gen.profiles
    }

    /// The shared derivation core.
    pub fn gen(&self) -> &Arc<SiteGen> {
        &self.gen
    }

    /// Derive the profile of the site at 1-based `rank` (O(1)).
    pub fn site(&self, rank: u32) -> SiteProfile {
        self.gen.site(rank)
    }

    /// Derive (or reuse, via the per-thread memo) the shared profile of
    /// the site at 1-based `rank`. Prefer this on crawl paths: the lazy
    /// world's endpoint and latency lookups for the same rank then hit
    /// the memo instead of re-deriving.
    pub fn site_shared(&self, rank: u32) -> Arc<SiteProfile> {
        self.gen.site_shared(rank)
    }

    /// The network handle visits connect through.
    pub fn net(&self) -> Net {
        Net::new(
            self.router.clone(),
            self.latency.clone(),
            self.faults.clone(),
        )
    }

    /// The network handle for a specific sim-day: identical to
    /// [`SiteFactory::net`] unless the scenario schedules outage windows,
    /// in which case the day's injector carries the outages active that
    /// day. Deterministic in `day` alone, so shards and workers agree.
    pub fn net_for_day(&self, day: u32) -> Net {
        let faults = self
            .faults_by_day
            .get(day as usize)
            .cloned()
            .unwrap_or_else(|| self.faults.clone());
        Net::new(self.router.clone(), self.latency.clone(), faults)
    }

    /// Shared router handle (lazy publisher resolution).
    pub fn router(&self) -> Arc<Router> {
        self.router.clone()
    }

    /// Shared latency directory handle.
    pub fn latency(&self) -> Arc<HostDirectory> {
        self.latency.clone()
    }

    /// Shared fault injector handle.
    pub fn faults(&self) -> Arc<FaultInjector> {
        self.faults.clone()
    }

    /// The detector's partner list (built once, cloning is two atomic ops).
    pub fn partner_list(&self) -> Arc<PartnerList> {
        self.detector_list.clone()
    }

    /// The per-visit runtime for a site profile (precomputed tables; no
    /// hostname re-rendering).
    pub fn runtime_for(&self, site: &SiteProfile) -> hb_adtech::SiteRuntime {
        self.gen.runtime_for(site)
    }

    /// The shared per-visit runtime for `rank` through the per-thread LRU
    /// memo — the crawl path's entry point (never rebuilds a memoized
    /// rank's runtime).
    pub fn runtime_shared(&self, rank: u32) -> Arc<hb_adtech::SiteRuntime> {
        self.gen.runtime_shared(rank)
    }

    /// Derive the deterministic RNG stream for a `(site, day)` visit.
    pub fn visit_rng(&self, rank: u32, day: u32) -> Rng {
        Rng::new(self.gen.config.seed)
            .derive_str("visits")
            .derive(rank as u64)
            .derive(day as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_factory() -> SiteFactory {
        SiteFactory::new(EcosystemConfig::tiny_scale())
    }

    #[test]
    fn any_rank_derivable_in_isolation() {
        let f = tiny_factory();
        let s = f.site(137);
        assert_eq!(s.rank, 137);
        assert_eq!(s.domain, "pub137.example");
    }

    #[test]
    fn derivation_is_order_independent() {
        let f = tiny_factory();
        let late_first = (f.site(200), f.site(1));
        let g = tiny_factory();
        let early_first = (g.site(1), g.site(200));
        assert_eq!(late_first.0.domain, early_first.1.domain);
        assert_eq!(late_first.0.facet, early_first.1.facet);
        assert_eq!(late_first.1.client_partner_ids, early_first.0.client_partner_ids);
    }

    #[test]
    fn million_rank_toplist_is_o1_per_site() {
        // The point of laziness: a huge toplist costs nothing until a
        // rank is actually requested.
        let f = SiteFactory::new(EcosystemConfig::paper_scale().with_sites(1_000_000));
        let s = f.site(999_999);
        assert_eq!(s.rank, 999_999);
        assert!(f.net().router.resolve("pub999999.example").is_some());
    }

    #[test]
    fn host_and_account_parsing() {
        let f = tiny_factory();
        let g = f.gen();
        assert_eq!(g.rank_of_page_host("pub7.example"), Some(7));
        assert_eq!(g.rank_of_page_host("pub0.example"), None);
        assert_eq!(g.rank_of_page_host("pub201.example"), None, "beyond toplist");
        assert_eq!(g.rank_of_page_host("pub07.example"), None, "leading zero");
        assert_eq!(g.rank_of_page_host("pub7x.example"), None);
        assert_eq!(g.rank_of_page_host("ads.pub7.example"), None);
        assert_eq!(g.rank_of_account("pub-7"), Some(7));
        assert_eq!(g.rank_of_account("pub-"), None);
        assert_eq!(g.rank_of_account("ghost"), None);
    }

    #[test]
    fn lazy_net_serves_publisher_hosts_on_demand() {
        let f = tiny_factory();
        let net = f.net();
        assert!(net.router.resolve("pub1.example").is_some());
        assert!(net.router.resolve("appnexus-adnet.example").is_some());
        assert!(net.router.resolve(crate::world::CDN_HOST).is_some());
        let mut rng = Rng::new(3);
        let sample = net.latency.lookup("pub1.example").sample(&mut rng);
        assert!(sample.as_micros() > 0);
    }
}
