//! # hb-ecosystem
//!
//! The synthetic web + ad-tech universe the crawler measures: the
//! 84-partner catalog with per-partner calibration ([`catalog`]),
//! rank-banded publisher profiles ([`publisher`]), Alexa-style toplists
//! with yearly churn ([`toplist`]), Wayback-style historical snapshots
//! ([`wayback`]), ad-size popularity tables ([`sizes`]), and the world
//! assembly wiring everything into one routable simulated Internet
//! ([`world`]).
//!
//! The [`Ecosystem`] facade generates the full universe from a single seed
//! and hands the crawler everything it needs: a `Send + Sync` router, the
//! latency directory, the detector's partner list, and per-site runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod factory;
pub mod publisher;
pub mod scenario;
pub mod sizes;
pub mod toplist;
pub mod wayback;
pub mod world;

pub use catalog::PartnerSpec;
pub use config::EcosystemConfig;
pub use factory::{SiteFactory, SiteGen};
pub use scenario::{OutageWindow, ScenarioConfig};
pub use publisher::{DeriveCtx, DeriveScratch, SiteProfile};
pub use toplist::{site_domain, site_domain_hstr, TopList, YEARLY_OVERLAPS};
pub use wayback::{snapshot, yearly_archive, Snapshot, YEARLY_ADOPTION};
pub use world::{
    ad_server_host_for, build_lazy_world, build_world, page_html, render_page_html,
    site_runtime, site_runtime_with, RuntimeCtx, CDN_HOST,
};

use hb_adtech::{HostDirectory, Net, PartnerProfile};
use hb_core::PartnerList;
use hb_http::Router;
use hb_simnet::{FaultInjector, Rng};
use std::sync::{Arc, OnceLock};

/// The universe facade: a thin memoizing wrapper over [`SiteFactory`].
///
/// Generation no longer materializes anything per-site: the router and
/// latency directory synthesize publisher endpoints on demand, and the
/// full profile table is derived lazily on first call to
/// [`Ecosystem::sites`] (then cached). Code that only crawls never pays
/// for ranks it does not visit.
pub struct Ecosystem {
    /// The configuration it was generated from.
    pub config: EcosystemConfig,
    /// Partner calibration specs (index = partner id).
    pub specs: Vec<PartnerSpec>,
    /// Partner runtime profiles (index = partner id).
    pub profiles: Vec<PartnerProfile>,
    /// The simulated Internet (lazy publisher resolution).
    pub router: Arc<Router>,
    /// Per-host latency models (lazy per-site derivation).
    pub latency: Arc<HostDirectory>,
    /// Ambient fault injection.
    pub faults: Arc<FaultInjector>,
    /// The detector's partner list, built once and shared by every visit.
    pub detector_list: Arc<PartnerList>,
    factory: SiteFactory,
    sites: OnceLock<Vec<SiteProfile>>,
}

impl Ecosystem {
    /// Generate the universe. Deterministic in `config.seed`; O(catalog)
    /// work — per-site state is derived on demand.
    pub fn generate(config: EcosystemConfig) -> Ecosystem {
        let factory = SiteFactory::new(config.clone());
        let specs = factory.specs().to_vec();
        let profiles = factory.profiles().to_vec();
        Ecosystem {
            config,
            specs,
            profiles,
            router: factory.router(),
            latency: factory.latency(),
            faults: factory.faults(),
            detector_list: factory.partner_list(),
            factory,
            sites: OnceLock::new(),
        }
    }

    /// The lazy factory backing this universe (what crawl shards consume).
    pub fn factory(&self) -> &SiteFactory {
        &self.factory
    }

    /// Every site in the toplist, rank order. Derived on first call and
    /// memoized — crawling through [`Ecosystem::factory`] never needs it.
    pub fn sites(&self) -> &[SiteProfile] {
        self.sites.get_or_init(|| {
            (1..=self.config.n_sites)
                .map(|rank| self.factory.site(rank))
                .collect()
        })
    }

    /// The network handle visits connect through.
    pub fn net(&self) -> Net {
        Net::new(
            self.router.clone(),
            self.latency.clone(),
            self.faults.clone(),
        )
    }

    /// The detector's partner list for this universe (shared, built once
    /// at generation time — cloning the handle is two atomic ops, not an
    /// 84-entry rebuild).
    pub fn partner_list(&self) -> Arc<PartnerList> {
        self.detector_list.clone()
    }

    /// Sites that actually run HB (ground truth).
    pub fn hb_sites(&self) -> impl Iterator<Item = &SiteProfile> {
        self.sites().iter().filter(|s| s.facet.is_some())
    }

    /// The per-visit runtime for a site.
    pub fn runtime_for(&self, site: &SiteProfile) -> hb_adtech::SiteRuntime {
        self.factory.runtime_for(site)
    }

    /// The shared per-visit runtime for `rank` through the factory's
    /// shared concurrent memo (crawl/bench hot path).
    pub fn runtime_shared(&self, rank: u32) -> std::sync::Arc<hb_adtech::SiteRuntime> {
        self.factory.runtime_shared(rank)
    }

    /// Clear the universe's shared derivation memo (measurement hook for
    /// benches and allocation tests; see [`SiteGen::clear_memos`]).
    pub fn clear_memos(&self) {
        self.factory.clear_memos();
    }

    /// Derive the deterministic RNG stream for a `(site, day)` visit.
    pub fn visit_rng(&self, rank: u32, day: u32) -> Rng {
        Rng::new(self.config.seed)
            .derive_str("visits")
            .derive(rank as u64)
            .derive(day as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_tiny_universe() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        assert_eq!(eco.sites().len(), 200);
        assert_eq!(eco.specs.len(), 84);
        assert_eq!(eco.partner_list().len(), 84);
        let hb = eco.hb_sites().count();
        assert!(hb > 10 && hb < 60, "hb sites {hb}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let b = Ecosystem::generate(EcosystemConfig::tiny_scale());
        for (sa, sb) in a.sites().iter().zip(b.sites().iter()) {
            assert_eq!(sa.domain, sb.domain);
            assert_eq!(sa.facet, sb.facet);
            assert_eq!(sa.client_partner_ids, sb.client_partner_ids);
        }
    }

    #[test]
    fn factory_sites_match_memoized_table() {
        // The memoizing wrapper and the lazy factory are the same universe.
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        for site in eco.sites() {
            let lazy = eco.factory().site(site.rank);
            assert_eq!(lazy.domain, site.domain);
            assert_eq!(lazy.facet, site.facet);
            assert_eq!(lazy.client_partner_ids, site.client_partner_ids);
            assert_eq!(lazy.waterfall_tier_ids, site.waterfall_tier_ids);
            assert_eq!(lazy.page_latency_ms, site.page_latency_ms);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(1));
        let b = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(2));
        let facets_a: Vec<_> = a.sites().iter().map(|s| s.facet).collect();
        let facets_b: Vec<_> = b.sites().iter().map(|s| s.facet).collect();
        assert_ne!(facets_a, facets_b);
    }

    #[test]
    fn visit_rng_streams_are_stable_and_distinct() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let mut a = eco.visit_rng(5, 2);
        let mut b = eco.visit_rng(5, 2);
        let mut c = eco.visit_rng(5, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn net_handle_resolves_universe_hosts() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let net = eco.net();
        assert!(net.router.resolve("pub1.example").is_some());
        assert!(net.router.resolve(CDN_HOST).is_some());
        assert!(net.router.resolve("appnexus-adnet.example").is_some());
    }
}
