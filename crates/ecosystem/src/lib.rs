//! # hb-ecosystem
//!
//! The synthetic web + ad-tech universe the crawler measures: the
//! 84-partner catalog with per-partner calibration ([`catalog`]),
//! rank-banded publisher profiles ([`publisher`]), Alexa-style toplists
//! with yearly churn ([`toplist`]), Wayback-style historical snapshots
//! ([`wayback`]), ad-size popularity tables ([`sizes`]), and the world
//! assembly wiring everything into one routable simulated Internet
//! ([`world`]).
//!
//! The [`Ecosystem`] facade generates the full universe from a single seed
//! and hands the crawler everything it needs: a `Send + Sync` router, the
//! latency directory, the detector's partner list, and per-site runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod publisher;
pub mod sizes;
pub mod toplist;
pub mod wayback;
pub mod world;

pub use catalog::PartnerSpec;
pub use config::EcosystemConfig;
pub use publisher::SiteProfile;
pub use toplist::{site_domain, TopList, YEARLY_OVERLAPS};
pub use wayback::{snapshot, yearly_archive, Snapshot, YEARLY_ADOPTION};
pub use world::{ad_server_host_for, build_world, page_html, site_runtime, CDN_HOST};

use hb_adtech::{HostDirectory, Net, PartnerProfile};
use hb_core::PartnerList;
use hb_http::Router;
use hb_simnet::{FaultInjector, Rng};
use std::sync::Arc;

/// The fully generated universe.
pub struct Ecosystem {
    /// The configuration it was generated from.
    pub config: EcosystemConfig,
    /// Partner calibration specs (index = partner id).
    pub specs: Vec<PartnerSpec>,
    /// Partner runtime profiles (index = partner id).
    pub profiles: Vec<PartnerProfile>,
    /// Every site in the toplist, rank order.
    pub sites: Vec<SiteProfile>,
    /// The simulated Internet.
    pub router: Arc<Router>,
    /// Per-host latency models.
    pub latency: Arc<HostDirectory>,
    /// Ambient fault injection.
    pub faults: Arc<FaultInjector>,
    /// The detector's partner list, built once and shared by every visit.
    pub detector_list: Arc<PartnerList>,
}

impl Ecosystem {
    /// Generate the universe. Deterministic in `config.seed`.
    pub fn generate(config: EcosystemConfig) -> Ecosystem {
        let specs = catalog::catalog();
        let profiles = catalog::profiles(&specs);
        let providers = catalog::providers(&specs);
        let pool = catalog::s2s_pool(&specs);
        let root = Rng::new(config.seed).derive_str("site-profiles");
        let sites: Vec<SiteProfile> = (1..=config.n_sites)
            .map(|rank| {
                let mut rng = root.derive(rank as u64);
                publisher::generate_site(&config, &specs, &providers, &pool, rank, &mut rng)
            })
            .collect();
        let world = world::build_world(&sites, &specs, &profiles);
        let detector_list = Arc::new(catalog::partner_list(&specs));
        let faults = FaultInjector::none()
            .with_drop_chance(config.drop_chance)
            .with_slowdown(
                config.slow_chance,
                hb_simnet::Dist::log_normal_median(350.0, 0.7).clamped(50.0, 12_000.0),
            );
        Ecosystem {
            config,
            specs,
            profiles,
            sites,
            router: Arc::new(world.router),
            latency: Arc::new(world.latency),
            faults: Arc::new(faults),
            detector_list,
        }
    }

    /// The network handle visits connect through.
    pub fn net(&self) -> Net {
        Net::new(
            self.router.clone(),
            self.latency.clone(),
            self.faults.clone(),
        )
    }

    /// The detector's partner list for this universe (shared, built once
    /// at generation time — cloning the handle is two atomic ops, not an
    /// 84-entry rebuild).
    pub fn partner_list(&self) -> Arc<PartnerList> {
        self.detector_list.clone()
    }

    /// Sites that actually run HB (ground truth).
    pub fn hb_sites(&self) -> impl Iterator<Item = &SiteProfile> {
        self.sites.iter().filter(|s| s.facet.is_some())
    }

    /// The per-visit runtime for a site.
    pub fn runtime_for(&self, site: &SiteProfile) -> hb_adtech::SiteRuntime {
        world::site_runtime(site, &self.specs)
    }

    /// Derive the deterministic RNG stream for a `(site, day)` visit.
    pub fn visit_rng(&self, rank: u32, day: u32) -> Rng {
        Rng::new(self.config.seed)
            .derive_str("visits")
            .derive(rank as u64)
            .derive(day as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_tiny_universe() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        assert_eq!(eco.sites.len(), 200);
        assert_eq!(eco.specs.len(), 84);
        assert_eq!(eco.partner_list().len(), 84);
        let hb = eco.hb_sites().count();
        assert!(hb > 10 && hb < 60, "hb sites {hb}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let b = Ecosystem::generate(EcosystemConfig::tiny_scale());
        for (sa, sb) in a.sites.iter().zip(b.sites.iter()) {
            assert_eq!(sa.domain, sb.domain);
            assert_eq!(sa.facet, sb.facet);
            assert_eq!(sa.client_partner_ids, sb.client_partner_ids);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(1));
        let b = Ecosystem::generate(EcosystemConfig::tiny_scale().with_seed(2));
        let facets_a: Vec<_> = a.sites.iter().map(|s| s.facet).collect();
        let facets_b: Vec<_> = b.sites.iter().map(|s| s.facet).collect();
        assert_ne!(facets_a, facets_b);
    }

    #[test]
    fn visit_rng_streams_are_stable_and_distinct() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let mut a = eco.visit_rng(5, 2);
        let mut b = eco.visit_rng(5, 2);
        let mut c = eco.visit_rng(5, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn net_handle_resolves_universe_hosts() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let net = eco.net();
        assert!(net.router.resolve("pub1.example").is_some());
        assert!(net.router.resolve(CDN_HOST).is_some());
        assert!(net.router.resolve("appnexus-adnet.example").is_some());
    }
}
