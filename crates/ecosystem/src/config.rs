//! Ecosystem configuration presets.

use crate::scenario::ScenarioConfig;

/// All knobs of the synthetic ecosystem generator.
#[derive(Clone, Debug)]
pub struct EcosystemConfig {
    /// Master seed; every derived stream hangs off this.
    pub seed: u64,
    /// Number of sites in the toplist (paper: 35,000).
    pub n_sites: u32,
    /// Days of daily crawling of HB sites (paper: 34).
    pub crawl_days: u32,
    /// HB adoption rate in the top 5k rank band (paper: 20–23%).
    pub adoption_top: f64,
    /// HB adoption rate in the 5k–15k band (paper: 12–17%).
    pub adoption_mid: f64,
    /// HB adoption rate in the 15k+ band (paper: 10–12%).
    pub adoption_tail: f64,
    /// Facet shares `(server, hybrid, client)` (paper: 48 / 34.7 / 17.3).
    pub facet_shares: (f64, f64, f64),
    /// Base probability a wrapper is misconfigured to fire immediately.
    pub misconfig_base: f64,
    /// Extra misconfiguration probability when the site uses late-prone
    /// partners (drives Fig. 18).
    pub misconfig_late_prone_boost: f64,
    /// Probability a site with a timeout uses the 3 s default.
    pub default_timeout_share: f64,
    /// Probability a wrapper waits for all partners (no timeout).
    pub no_timeout_share: f64,
    /// Share of sites that duplicate slots per device class (>20 slots
    /// oddity, §5.3).
    pub device_duplication_share: f64,
    /// Ambient network fault rates.
    pub drop_chance: f64,
    /// Ambient slowdown chance.
    pub slow_chance: f64,
    /// Render failure rate after a win.
    pub render_fail_rate: f64,
    /// Degraded-network campaign scenario (outage windows, per-host
    /// profiles, degraded links, ad-path robustness). The default
    /// ([`ScenarioConfig::healthy`]) changes nothing.
    pub scenario: ScenarioConfig,
}

impl EcosystemConfig {
    /// Full paper scale: 35k sites, 34 crawl days.
    pub fn paper_scale() -> EcosystemConfig {
        EcosystemConfig {
            seed: 0x4845_4144_4552, // "HEADER"
            n_sites: 35_000,
            crawl_days: 34,
            adoption_top: 0.22,
            adoption_mid: 0.15,
            adoption_tail: 0.12,
            facet_shares: (0.48, 0.347, 0.173),
            misconfig_base: 0.02,
            misconfig_late_prone_boost: 0.15,
            default_timeout_share: 0.45,
            no_timeout_share: 0.12,
            device_duplication_share: 0.04,
            drop_chance: 0.004,
            slow_chance: 0.03,
            render_fail_rate: 0.015,
            scenario: ScenarioConfig::healthy(),
        }
    }

    /// Reduced scale for the test suite and examples: same distributions,
    /// 1,400 sites × 3 days.
    pub fn test_scale() -> EcosystemConfig {
        EcosystemConfig {
            n_sites: 1_400,
            crawl_days: 3,
            ..EcosystemConfig::paper_scale()
        }
    }

    /// Tiny scale for fast unit tests: 200 sites × 1 day.
    pub fn tiny_scale() -> EcosystemConfig {
        EcosystemConfig {
            n_sites: 200,
            crawl_days: 1,
            ..EcosystemConfig::paper_scale()
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> EcosystemConfig {
        self.seed = seed;
        self
    }

    /// Override the site count.
    pub fn with_sites(mut self, n: u32) -> EcosystemConfig {
        self.n_sites = n;
        self
    }

    /// Override the crawl duration.
    pub fn with_days(mut self, d: u32) -> EcosystemConfig {
        self.crawl_days = d;
        self
    }

    /// Override the degraded-network scenario.
    pub fn with_scenario(mut self, scenario: ScenarioConfig) -> EcosystemConfig {
        self.scenario = scenario;
        self
    }

    /// The adoption probability for a 1-based rank.
    pub fn adoption_for_rank(&self, rank: u32) -> f64 {
        // Bands scale with the configured universe so reduced-scale runs
        // keep the same head/middle/tail structure.
        let top_band = self.n_sites / 7; // 5k of 35k
        let mid_band = 3 * self.n_sites / 7; // 15k of 35k
        if rank <= top_band.max(1) {
            self.adoption_top
        } else if rank <= mid_band.max(2) {
            self.adoption_mid
        } else {
            self.adoption_tail
        }
    }

    /// Expected overall adoption rate under the band structure (≈14.28%).
    pub fn expected_adoption(&self) -> f64 {
        (self.adoption_top + 2.0 * self.adoption_mid + 4.0 * self.adoption_tail) / 7.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let c = EcosystemConfig::paper_scale();
        assert_eq!(c.n_sites, 35_000);
        assert_eq!(c.crawl_days, 34);
        let (s, h, cl) = c.facet_shares;
        assert!((s + h + cl - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adoption_bands_follow_rank() {
        let c = EcosystemConfig::paper_scale();
        assert_eq!(c.adoption_for_rank(1), 0.22);
        assert_eq!(c.adoption_for_rank(5_000), 0.22);
        assert_eq!(c.adoption_for_rank(5_001), 0.15);
        assert_eq!(c.adoption_for_rank(15_000), 0.15);
        assert_eq!(c.adoption_for_rank(15_001), 0.12);
        assert_eq!(c.adoption_for_rank(35_000), 0.12);
    }

    #[test]
    fn expected_adoption_near_paper_rate() {
        let c = EcosystemConfig::paper_scale();
        let e = c.expected_adoption();
        assert!((e - 0.1428).abs() < 0.01, "expected {e}");
    }

    #[test]
    fn scaled_bands_preserve_structure() {
        let c = EcosystemConfig::tiny_scale();
        assert_eq!(c.adoption_for_rank(1), c.adoption_top);
        assert_eq!(c.adoption_for_rank(200), c.adoption_tail);
    }

    #[test]
    fn builders() {
        let c = EcosystemConfig::test_scale().with_seed(9).with_sites(50).with_days(2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.n_sites, 50);
        assert_eq!(c.crawl_days, 2);
    }
}
