//! The Demand Partner catalog: 84 partners with calibrated behaviour.
//!
//! Partner names follow the entities reported in the paper's figures
//! (Figures 8, 11, 14, 18); the hostnames live in a synthetic `.example`
//! namespace. Latency medians/spreads, bid rates and price distributions
//! are calibrated so that the detector *measures* the paper's shapes:
//!
//! * Fig. 14 — fastest partners 41–217 ms median, slowest 646–1290 ms;
//! * Fig. 16 — popular partners show smaller latency variability;
//! * Fig. 22/24 — popular partners bid low and consistently; niche
//!   partners bid higher with more variance;
//! * Fig. 18 — a set of "late-prone" partners whose bids mostly miss the
//!   auction (they live on badly configured long-tail sites).

use hb_adtech::{PartnerId, PartnerKind, PartnerProfile};
use hb_core::{PartnerEntry, PartnerList};
use hb_simnet::{Dist, LatencyModel};

/// Declarative spec for one partner (converted into a runtime profile).
#[derive(Clone, Debug)]
pub struct PartnerSpec {
    /// Display name (paper figure labels).
    pub name: &'static str,
    /// Bidder/adapter code.
    pub code: &'static str,
    /// Popularity weight for client-adapter selection.
    pub weight: f64,
    /// Median client-facing RTT in ms.
    pub latency_median_ms: f64,
    /// Log-normal sigma of the RTT.
    pub latency_sigma: f64,
    /// Probability of a Pareto straggler tail.
    pub tail_chance: f64,
    /// Bid probability per slot for a clean-profile user.
    pub bid_rate: f64,
    /// Median CPM bid (before size factors).
    pub price_median: f64,
    /// Log-normal sigma of the CPM.
    pub price_sigma: f64,
    /// Role.
    pub kind: PartnerKind,
    /// Can operate as a server-side provider / ad server.
    pub is_ad_server: bool,
    /// Participates in providers' server-to-server pools.
    pub in_s2s_pool: bool,
    /// Attracts badly configured long-tail publishers (Fig. 18).
    pub late_prone: bool,
}

impl PartnerSpec {
    const fn new(name: &'static str, code: &'static str) -> PartnerSpec {
        PartnerSpec {
            name,
            code,
            weight: 0.01,
            latency_median_ms: 400.0,
            latency_sigma: 0.45,
            tail_chance: 0.045,
            bid_rate: 0.08,
            price_median: 0.08,
            price_sigma: 0.9,
            kind: PartnerKind::Exchange,
            is_ad_server: false,
            in_s2s_pool: false,
            late_prone: false,
        }
    }

    /// Hostname in the simulated namespace.
    pub fn host(&self) -> String {
        format!("{}-adnet.example", self.code.replace('_', "-"))
    }

    /// Convert to the runtime profile driving the partner's endpoint.
    pub fn to_profile(&self, id: u32) -> PartnerProfile {
        PartnerProfile {
            id: PartnerId(id),
            display_name: self.name.to_string(),
            bidder_code: hb_http::HStr::from_static(self.code),
            host: self.host().into(),
            kind: self.kind,
            latency: LatencyModel::log_normal(self.latency_median_ms, self.latency_sigma)
                .with_tail(self.tail_chance, 2_800.0, 1.5)
                .with_floor(8.0),
            s2s_latency: LatencyModel::log_normal(
                (self.latency_median_ms * 0.25).max(15.0),
                0.3,
            )
            .with_floor(5.0),
            // Clean-profile crawlers attract roughly half the bid density
            // a real audience would (Table 1: 241k bids / 799k auctions).
            bid_rate: self.bid_rate * 0.5,
            // Bimodal pricing: the bulk of clean-profile bids are tiny
            // (keeps Fig. 23's per-size medians at 0.001-0.1 CPM), but a
            // high-value mode -- brand/retargeting-style demand that bids
            // on anyone -- carries the >20%-above-0.5-CPM mass of Fig. 22.
            price: Dist::Mix(vec![
                (
                    0.72,
                    Dist::LogNormal {
                        // Scaled to land Fig. 23's per-size medians
                        // (300x250 at ~0.03 CPM for baseline users).
                        mu: (self.price_median * 0.55).ln(),
                        sigma: self.price_sigma,
                    },
                ),
                (
                    0.28,
                    Dist::LogNormal {
                        mu: 1.1f64.ln(),
                        sigma: 0.55 + self.price_sigma * 0.25,
                    },
                ),
            ]),
            per_slot_processing_ms: 22.0,
            seats: 4,
            can_serve_s2s: self.is_ad_server,
        }
    }

    /// Convert to the detector's partner-list entry.
    pub fn to_entry(&self) -> PartnerEntry {
        PartnerEntry {
            name: self.name.to_string(),
            code: self.code.to_string(),
            domains: vec![self.host()],
            is_ad_server: self.is_ad_server,
        }
    }
}

macro_rules! spec {
    ($name:literal, $code:literal, { $($field:ident : $value:expr),* $(,)? }) => {{
        #[allow(clippy::needless_update)]
        PartnerSpec {
            $($field: $value,)*
            ..PartnerSpec::new($name, $code)
        }
    }};
}

/// Build the full 84-partner catalog.
pub fn catalog() -> Vec<PartnerSpec> {
    let mut v: Vec<PartnerSpec> = Vec::with_capacity(84);

    // --- The top of the market (Fig. 8), in the paper's order. -----------
    v.push(spec!("DFP", "dfp", {
        weight: 0.02, latency_median_ms: 110.0, latency_sigma: 0.22,
        bid_rate: 0.0, kind: PartnerKind::AdServer, is_ad_server: true,
    }));
    v.push(spec!("AppNexus", "appnexus", {
        weight: 0.200, latency_median_ms: 270.0, latency_sigma: 0.26,
        bid_rate: 0.16, price_median: 0.035, price_sigma: 0.55, in_s2s_pool: true,
    }));
    v.push(spec!("Rubicon", "rubicon", {
        weight: 0.180, latency_median_ms: 255.0, latency_sigma: 0.26,
        bid_rate: 0.17, price_median: 0.035, price_sigma: 0.55, in_s2s_pool: true,
    }));
    v.push(spec!("Criteo", "criteo", {
        weight: 0.150, latency_median_ms: 185.0, latency_sigma: 0.25,
        bid_rate: 0.12, price_median: 0.04, price_sigma: 0.6, is_ad_server: true,
    }));
    v.push(spec!("Index", "ix", {
        weight: 0.120, latency_median_ms: 295.0, latency_sigma: 0.28,
        bid_rate: 0.14, price_median: 0.04, price_sigma: 0.6, in_s2s_pool: true,
    }));
    v.push(spec!("Amazon", "amazon", {
        weight: 0.110, latency_median_ms: 240.0, latency_sigma: 0.25,
        bid_rate: 0.10, price_median: 0.045, price_sigma: 0.6, is_ad_server: true,
    }));
    v.push(spec!("Openx", "openx", {
        weight: 0.100, latency_median_ms: 320.0, latency_sigma: 0.30,
        bid_rate: 0.12, price_median: 0.045, price_sigma: 0.65, in_s2s_pool: true,
    }));
    v.push(spec!("Pubmatic", "pubmatic", {
        weight: 0.080, latency_median_ms: 340.0, latency_sigma: 0.31,
        bid_rate: 0.11, price_median: 0.05, price_sigma: 0.65, in_s2s_pool: true,
    }));
    v.push(spec!("AOL", "aol", {
        weight: 0.070, latency_median_ms: 355.0, latency_sigma: 0.33,
        bid_rate: 0.09, price_median: 0.05, price_sigma: 0.7,
    }));
    v.push(spec!("Sovrn", "sovrn", {
        weight: 0.060, latency_median_ms: 365.0, latency_sigma: 0.34,
        bid_rate: 0.09, price_median: 0.055, price_sigma: 0.7, in_s2s_pool: true,
    }));
    v.push(spec!("Smart", "smartadserver", {
        weight: 0.050, latency_median_ms: 380.0, latency_sigma: 0.35,
        bid_rate: 0.08, price_median: 0.055, price_sigma: 0.7, in_s2s_pool: true,
    }));

    // --- Fig. 11 bid-share codes living mostly in s2s pools. --------------
    v.push(spec!("DistrictM", "districtm", {
        weight: 0.030, latency_median_ms: 420.0, latency_sigma: 0.4,
        bid_rate: 0.12, price_median: 0.06, price_sigma: 0.8, in_s2s_pool: true,
    }));
    v.push(spec!("OftMedia", "oftmedia", {
        weight: 0.028, latency_median_ms: 430.0, latency_sigma: 0.4,
        bid_rate: 0.12, price_median: 0.06, price_sigma: 0.8, in_s2s_pool: true,
    }));
    v.push(spec!("BRealTime", "brealtime", {
        weight: 0.022, latency_median_ms: 440.0, latency_sigma: 0.42,
        bid_rate: 0.11, price_median: 0.07, price_sigma: 0.8, in_s2s_pool: true,
    }));
    v.push(spec!("EMX Digital", "emx_digital", {
        weight: 0.026, latency_median_ms: 410.0, latency_sigma: 0.42,
        bid_rate: 0.13, price_median: 0.07, price_sigma: 0.8, in_s2s_pool: true,
    }));
    v.push(spec!("AdUp Tech", "aduptech", {
        weight: 0.026, latency_median_ms: 400.0, latency_sigma: 0.42,
        bid_rate: 0.12, price_median: 0.07, price_sigma: 0.85,
    }));
    v.push(spec!("LiveWrapped", "livewrapped", {
        weight: 0.024, latency_median_ms: 415.0, latency_sigma: 0.42,
        bid_rate: 0.12, price_median: 0.07, price_sigma: 0.85,
    }));

    // --- Fastest partners (Fig. 14 left, medians 41–217 ms). -------------
    let fast: [(&str, &str, f64); 10] = [
        ("Piximedia", "piximedia", 41.0),
        ("OneTag", "onetag", 62.0),
        ("Justpremium", "justpremium", 80.0),
        ("StickyAdsTV", "stickyadstv", 95.0),
        ("Widespace", "widespace", 115.0),
        ("Polymorph", "polymorph", 135.0),
        ("Yieldlab", "yieldlab", 155.0),
        ("Gjirafa", "gjirafa", 175.0),
        ("Atomx", "atomx", 195.0),
        ("Yieldbot", "yieldbot", 217.0),
    ];
    for (i, (name, code, med)) in fast.into_iter().enumerate() {
        // Yieldlab is notable as a single-partner choice (Fig. 10).
        let weight = if code == "yieldlab" { 0.020 } else { 0.006 + 0.001 * i as f64 };
        let late_prone = matches!(
            code,
            "piximedia" | "justpremium" | "atomx" | "yieldlab"
        );
        v.push(spec!("", "", {
            name: name, code: code, weight: weight,
            latency_median_ms: med, latency_sigma: 0.5,
            bid_rate: 0.08, price_median: 0.12, price_sigma: 1.1,
            late_prone: late_prone,
        }));
    }

    // --- Slowest partners (Fig. 14 right, medians 646–1290 ms). -----------
    let slow: [(&str, &str, f64); 10] = [
        ("Adgeneration", "adgeneration", 646.0),
        ("Gamma SSP", "gammassp", 700.0),
        ("Bridgewell", "bridgewell", 755.0),
        ("Innity", "innity", 810.0),
        ("Aardvark", "aardvark", 860.0),
        ("Yieldone", "yieldone", 915.0),
        ("C1X", "c1x", 970.0),
        ("Fidelity", "fidelity", 1_060.0),
        ("AdOcean", "adocean", 1_160.0),
        ("Trion", "trion", 1_290.0),
    ];
    for (name, code, med) in slow {
        v.push(spec!("", "", {
            name: name, code: code, weight: 0.005,
            latency_median_ms: med, latency_sigma: 0.65, tail_chance: 0.10,
            bid_rate: 0.07, price_median: 0.15, price_sigma: 1.2,
            late_prone: true,
        }));
    }

    // --- The rest of the Fig. 18 late-bid cast. ----------------------------
    let late_cast: [(&str, &str); 15] = [
        ("Lifestreet", "lifestreet"),
        ("AdMatic", "admatic"),
        ("Consumable", "consumable"),
        ("Spotx", "spotx"),
        ("FreeWheel", "freewheel"),
        ("LKQD", "lkqd"),
        ("Tremor", "tremor"),
        ("InSkin", "inskin"),
        ("AdKernelAdn", "adkerneladn"),
        ("Quantum", "quantum"),
        ("SmartyAds", "smartyads"),
        ("Clickonometrics", "clickonometrics"),
        ("Kumma", "kumma"),
        ("E-Planning", "eplanning"),
        ("ImproveDigital", "improvedigital"),
    ];
    for (i, (name, code)) in late_cast.into_iter().enumerate() {
        v.push(spec!("", "", {
            name: name, code: code, weight: 0.004 + 0.0005 * i as f64,
            latency_median_ms: 450.0 + 40.0 * i as f64, latency_sigma: 0.55,
            tail_chance: 0.03,
            bid_rate: 0.08, price_median: 0.14, price_sigma: 1.15,
            late_prone: true,
        }));
    }

    // --- Long tail filling the catalog to 84. ------------------------------
    let tail: [(&str, &str); 32] = [
        ("Taboola", "taboola"),
        ("Outbrain", "outbrain"),
        ("Teads", "teads"),
        ("Unruly", "unruly"),
        ("GumGum", "gumgum"),
        ("Sharethrough", "sharethrough"),
        ("TripleLift", "triplelift"),
        ("Sonobi", "sonobi"),
        ("Conversant", "conversant"),
        ("MediaNet", "medianet"),
        ("33Across", "33across"),
        ("Undertone", "undertone"),
        ("AdYouLike", "adyoulike"),
        ("RhythmOne", "rhythmone"),
        ("Beachfront", "beachfront"),
        ("Kargo", "kargo"),
        ("Nativo", "nativo"),
        ("AdForm", "adform"),
        ("Sortable", "sortable"),
        ("Vidazoo", "vidazoo"),
        ("SpringServe", "springserve"),
        ("Telaria", "telaria"),
        ("OneVideo", "onevideo"),
        ("Vertoz", "vertoz"),
        ("AdColony", "adcolony"),
        ("Fyber", "fyber"),
        ("InMobi", "inmobi"),
        ("PubNative", "pubnative"),
        ("Smaato", "smaato"),
        ("Mintegral", "mintegral"),
        ("AppLovin", "applovin"),
        ("Bidtellect", "bidtellect"),
    ];
    for (i, (name, code)) in tail.into_iter().enumerate() {
        // Latency spread grows with unpopularity (Fig. 16); prices grow
        // and get noisier (Fig. 24).
        let f = i as f64 / 31.0;
        v.push(spec!("", "", {
            name: name, code: code, weight: 0.004 - 0.00005 * i as f64,
            latency_median_ms: 330.0 + 260.0 * f,
            latency_sigma: 0.45 + 0.35 * f,
            tail_chance: 0.015 + 0.02 * f,
            bid_rate: 0.06, price_median: 0.10 + 0.20 * f,
            price_sigma: 0.95 + 0.45 * f,
            late_prone: i % 5 == 4,
        }));
    }

    assert_eq!(v.len(), 84, "the paper reports exactly 84 partners");
    v
}

/// Convert the catalog into runtime profiles (index = id).
pub fn profiles(specs: &[PartnerSpec]) -> Vec<PartnerProfile> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_profile(i as u32))
        .collect()
}

/// Build the detector's partner list from the catalog — the reproduction
/// of "we collected and combined several lists used by HB tools".
pub fn partner_list(specs: &[PartnerSpec]) -> PartnerList {
    PartnerList::new(specs.iter().map(PartnerSpec::to_entry))
}

/// Indices of partners eligible for providers' s2s pools.
pub fn s2s_pool(specs: &[PartnerSpec]) -> Vec<usize> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.in_s2s_pool)
        .map(|(i, _)| i)
        .collect()
}

/// Indices of server-side-capable providers with their market share among
/// provider selections (DFP dominates; Amazon and Criteo trail).
pub fn providers(specs: &[PartnerSpec]) -> Vec<(usize, f64)> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_ad_server)
        .map(|(i, s)| {
            let share = match s.code {
                "dfp" => 0.96,
                "amazon" => 0.025,
                "criteo" => 0.015,
                _ => 0.001,
            };
            (i, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_84_partners_with_unique_codes() {
        let specs = catalog();
        assert_eq!(specs.len(), 84);
        let mut codes: Vec<&str> = specs.iter().map(|s| s.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 84, "duplicate bidder code in catalog");
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 84, "duplicate display name in catalog");
    }

    #[test]
    fn top_partners_present_with_ordering() {
        let specs = catalog();
        let w = |code: &str| specs.iter().find(|s| s.code == code).unwrap().weight;
        assert!(w("appnexus") > w("rubicon"));
        assert!(w("rubicon") > w("criteo"));
        assert!(w("criteo") > w("ix"));
        assert!(w("sovrn") > w("districtm"));
    }

    #[test]
    fn fig14_latency_calibration() {
        let specs = catalog();
        let med = |code: &str| {
            specs
                .iter()
                .find(|s| s.code == code)
                .unwrap()
                .latency_median_ms
        };
        assert_eq!(med("piximedia"), 41.0);
        assert_eq!(med("yieldbot"), 217.0);
        assert_eq!(med("adgeneration"), 646.0);
        assert_eq!(med("trion"), 1290.0);
        // Criteo is the fast one among the top partners (paper §5.2).
        assert!(med("criteo") < 200.0);
    }

    #[test]
    fn fig16_variability_grows_with_unpopularity() {
        let specs = catalog();
        let sig = |code: &str| specs.iter().find(|s| s.code == code).unwrap().latency_sigma;
        assert!(sig("appnexus") < sig("piximedia"));
        assert!(sig("appnexus") < sig("trion"));
    }

    #[test]
    fn fig24_price_calibration() {
        let specs = catalog();
        let p = |code: &str| {
            let s = specs.iter().find(|s| s.code == code).unwrap();
            (s.price_median, s.price_sigma)
        };
        let (pm_top, ps_top) = p("appnexus");
        let (pm_tail, ps_tail) = p("trion");
        assert!(pm_top < pm_tail, "popular bid lower");
        assert!(ps_top < ps_tail, "popular bid more consistently");
    }

    #[test]
    fn late_prone_set_covers_fig18_cast() {
        let specs = catalog();
        let late: Vec<&str> = specs
            .iter()
            .filter(|s| s.late_prone)
            .map(|s| s.code)
            .collect();
        assert!(late.len() >= 21, "paper: 21 partners late in 50% of auctions; got {}", late.len());
        for code in ["atomx", "lifestreet", "yieldone", "c1x", "adocean"] {
            assert!(late.contains(&code), "{code} should be late-prone");
        }
    }

    #[test]
    fn profiles_and_list_consistent() {
        let specs = catalog();
        let profiles = profiles(&specs);
        let list = partner_list(&specs);
        assert_eq!(profiles.len(), 84);
        assert_eq!(list.len(), 84);
        for p in &profiles {
            let e = list.match_host(&p.host).unwrap();
            assert_eq!(e.code, p.bidder_code);
        }
        // DFP flagged as ad server in the detector list.
        assert!(list.by_code("dfp").unwrap().is_ad_server);
    }

    #[test]
    fn provider_shares_sum_to_one_ish() {
        let specs = catalog();
        let ps = providers(&specs);
        assert!(ps.len() >= 3);
        let total: f64 = ps.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 0.01, "total {total}");
    }

    #[test]
    fn s2s_pool_contains_fig11_bidders() {
        let specs = catalog();
        let pool = s2s_pool(&specs);
        let codes: Vec<&str> = pool.iter().map(|&i| specs[i].code).collect();
        for code in [
            "rubicon",
            "appnexus",
            "ix",
            "openx",
            "districtm",
            "pubmatic",
            "oftmedia",
            "brealtime",
            "emx_digital",
            "smartadserver",
        ] {
            assert!(codes.contains(&code), "{code} missing from s2s pool");
        }
    }

    #[test]
    fn hosts_are_wellformed() {
        for s in catalog() {
            let h = s.host();
            assert!(h.ends_with("-adnet.example"));
            assert!(!h.contains('_'), "underscores not allowed in hosts: {h}");
        }
    }
}
