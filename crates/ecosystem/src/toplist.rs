//! Synthetic Alexa-style toplists with yearly churn.
//!
//! The paper crawls the head of a toplist purchased in 01/2017 and reports
//! its overlap with the 2017–2019 lists (78.36%, 62.10%, 58.36%, 55.34%).
//! The churn model reproduces that: a yearly snapshot keeps a configured
//! fraction of the base list's domains (re-ranked) and fills the rest with
//! newcomers.

use hb_simnet::Rng;

/// A ranked toplist: `domains[i]` holds the domain at rank `i + 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopList {
    /// Label (e.g. `base-2017`, `2019-02`).
    pub label: String,
    /// Ranked domains.
    pub domains: Vec<String>,
}

impl TopList {
    /// The base list: deterministic domain names `pub{n}.example`.
    pub fn base(n: u32) -> TopList {
        TopList {
            label: "base-2017".to_string(),
            domains: (1..=n).map(site_domain).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Derive a churned snapshot keeping `overlap` of this list's domains
    /// (uniformly chosen), re-ranked, with newcomers filling the gaps.
    pub fn churned(&self, label: &str, overlap: f64, rng: &mut Rng) -> TopList {
        let n = self.domains.len();
        let keep = ((n as f64) * overlap.clamp(0.0, 1.0)).round() as usize;
        let kept_idx = rng.sample_indices(n, keep);
        let mut domains: Vec<String> =
            kept_idx.iter().map(|&i| self.domains[i].clone()).collect();
        let mut fresh = 0u64;
        while domains.len() < n {
            domains.push(format!("new-{label}-{fresh}.example"));
            fresh += 1;
        }
        rng.shuffle(&mut domains);
        TopList {
            label: label.to_string(),
            domains,
        }
    }

    /// Fraction of this list's domains also present in `other`.
    pub fn overlap_with(&self, other: &TopList) -> f64 {
        if self.domains.is_empty() {
            return 0.0;
        }
        let set: std::collections::HashSet<&str> =
            other.domains.iter().map(String::as_str).collect();
        let shared = self
            .domains
            .iter()
            .filter(|d| set.contains(d.as_str()))
            .count();
        shared as f64 / self.domains.len() as f64
    }

    /// The top `k` entries as a new list.
    pub fn head(&self, k: usize, label: &str) -> TopList {
        TopList {
            label: label.to_string(),
            domains: self.domains.iter().take(k).cloned().collect(),
        }
    }
}

/// The canonical domain of the site at 1-based `rank` in the base list.
pub fn site_domain(rank: u32) -> String {
    format!("pub{rank}.example")
}

/// [`site_domain`] as a compact [`hb_http::HStr`]: rendered through a
/// stack buffer and stored inline (`pub{u32}.example` is at most 21
/// bytes), so deriving a hostname never touches the heap.
pub fn site_domain_hstr(rank: u32) -> hb_http::HStr {
    hb_http::HStr::from_display(format_args!("pub{rank}.example"))
}

/// Per-year overlap targets versus the purchased base list (paper §3.2).
pub const YEARLY_OVERLAPS: [(&str, f64); 4] = [
    ("2017-06", 0.7836),
    ("2018-06", 0.6210),
    ("2019-02", 0.5836),
    ("2019-06", 0.5534),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_list_is_deterministic() {
        let a = TopList::base(100);
        let b = TopList::base(100);
        assert_eq!(a, b);
        assert_eq!(a.domains[0], "pub1.example");
        assert_eq!(a.domains[99], "pub100.example");
    }

    #[test]
    fn churn_hits_overlap_target() {
        let base = TopList::base(5_000);
        let mut rng = Rng::new(3);
        for (label, target) in YEARLY_OVERLAPS {
            let snap = base.churned(label, target, &mut rng);
            assert_eq!(snap.len(), base.len());
            let got = base.overlap_with(&snap);
            assert!(
                (got - target).abs() < 0.005,
                "{label}: got {got}, want {target}"
            );
        }
    }

    #[test]
    fn churned_lists_have_unique_domains() {
        let base = TopList::base(1_000);
        let mut rng = Rng::new(5);
        let snap = base.churned("t", 0.6, &mut rng);
        let mut d = snap.domains.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), snap.len());
    }

    #[test]
    fn overlap_extremes() {
        let base = TopList::base(100);
        let mut rng = Rng::new(7);
        let all = base.churned("all", 1.0, &mut rng);
        assert!((base.overlap_with(&all) - 1.0).abs() < 1e-12);
        let none = base.churned("none", 0.0, &mut rng);
        assert_eq!(base.overlap_with(&none), 0.0);
    }

    #[test]
    fn head_takes_prefix() {
        let base = TopList::base(50);
        let h = base.head(10, "top10");
        assert_eq!(h.len(), 10);
        assert_eq!(h.domains[9], "pub10.example");
    }
}
