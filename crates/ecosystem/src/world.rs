//! World assembly: wiring the generated sites and partner catalog into a
//! routable simulated Internet.
//!
//! One [`Router`] serves the whole universe: every publisher page, every
//! publisher-owned ad server (client-side sites), the shared DFP-like
//! providers, all 84 partner endpoints and the CDN. The router is
//! `Send + Sync`, so the crawler can share a single world across worker
//! threads.

use crate::catalog::PartnerSpec;
use crate::factory::SiteGen;
use crate::publisher::{partner_refs, SiteProfile};
use hb_adtech::{
    partner_endpoint, waterfall_endpoint, AdServerAccount, AdServerEndpoint, DirectOrder,
    HostDirectory, PartnerProfile, PartnerRef, RobustnessPolicy,
};
use hb_http::{Endpoint, HStr, Request, Response, Router, ServerReply};
use hb_simnet::{LatencyModel, Rng, SimDuration};
use std::fmt::Write as _;
use std::sync::Arc;

/// The shared CDN host serving wrapper/ad-manager libraries.
pub const CDN_HOST: &str = "cdn.hbrepro.example";

/// Build the HTML of a live publisher page (also served by its endpoint).
/// Convenience wrapper over [`render_page_html`]; the memoizing factory
/// path renders into a reusable per-worker buffer instead.
pub fn page_html(site: &SiteProfile, specs: &[PartnerSpec]) -> String {
    let mut out = String::new();
    render_page_html(site, specs, &mut out);
    out
}

/// Render a publisher page into `out` (cleared first). Byte-identical to
/// what the former [`hb_dom::HtmlBuilder`] assembly produced, but written
/// straight into one buffer: no per-fragment `format!` temporaries, no
/// builder vectors — a memo-missed page render costs only the buffer's
/// steady-state growth.
pub fn render_page_html(site: &SiteProfile, specs: &[PartnerSpec], out: &mut String) {
    out.clear();
    out.push_str("<!DOCTYPE html>\n<html>\n<head>\n<title>");
    let _ = write!(out, "{} — rank {}", site.domain, site.rank);
    out.push_str("</title>\n");
    if site.facet.is_some() {
        out.push_str("<script src=\"https://");
        out.push_str(CDN_HOST);
        out.push_str("/prebid.js\"></script>\n<script src=\"https://");
        out.push_str(CDN_HOST);
        out.push_str("/gpt/pubads_impl.js\"></script>\n<script>");
        let _ = write!(
            out,
            "pbjs.addAdUnits({}); pbjs.requestBids({{timeout: {}}});",
            site.ad_units.len(),
            site.wrapper
                .timeout
                .map(|t| t.as_micros() / 1000)
                .unwrap_or(0),
        );
        out.push_str("</script>\n");
        if !site.client_partner_ids.is_empty() {
            out.push_str("<script>// bidders: ");
            for (i, &pid) in site.client_partner_ids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(specs[pid].code);
            }
            out.push_str("</script>\n");
        }
    }
    out.push_str("</head>\n<body>\n");
    for unit in site.ad_units.iter() {
        out.push_str("<div id=\"");
        out.push_str(&unit.code);
        out.push_str("\" class=\"ad-unit\"></div>\n");
    }
    if site.facet.is_none() {
        out.push_str("<script src=\"https://");
        out.push_str(CDN_HOST);
        out.push_str("/gpt/pubads_impl.js\"></script>\n");
    }
    out.push_str("</body>\n</html>\n");
}

/// Build the ad-server account for a site (used by its own ad server for
/// client-side sites, or registered at the provider for server/hybrid).
/// `profiles` is the `Arc`-shared partner-profile table — the account
/// references the s2s pool's profiles instead of deep-cloning them.
pub fn account_for(
    site: &SiteProfile,
    profiles: &[Arc<PartnerProfile>],
) -> AdServerAccount {
    let direct_orders = site
        .direct_order_cpm
        .map(|cpm| {
            vec![DirectOrder {
                cpm: hb_adtech::Cpm(cpm),
                fill_rate: 0.12,
                sizes: vec![],
            }]
        })
        .unwrap_or_default();
    AdServerAccount {
        account_id: site.account_id(),
        direct_orders,
        fallback_cpm: Some(hb_adtech::Cpm(0.02)),
        floor: hb_adtech::Cpm(site.floor),
        s2s_partners: site
            .s2s_partner_ids
            .iter()
            .map(|&i| profiles[i].clone())
            .collect(),
        ad_units: site.ad_units.clone(),
        // Robustness is a campaign-scenario axis; the factory layers the
        // scenario's mediator deadline on top of this baseline account.
        s2s_deadline: None,
        s2s_retry_backoff: SimDuration::ZERO,
    }
}

/// Assembled world: router + latency directory.
pub struct World {
    /// Hostname routing for every endpoint in the universe.
    pub router: Router,
    /// Per-host latency models.
    pub latency: HostDirectory,
}

/// Latency model of a publisher page origin.
fn page_latency_model(site: &SiteProfile) -> LatencyModel {
    LatencyModel::log_normal(site.page_latency_ms, 0.3).with_floor(8.0)
}

/// Latency model of a publisher's self-hosted ad server. Markedly slower
/// than Google-grade infrastructure (part of why Client-Side HB is the
/// slow facet).
fn own_ads_latency_model(site: &SiteProfile) -> LatencyModel {
    LatencyModel::log_normal(150.0 + site.page_latency_ms, 0.45).with_floor(20.0)
}

/// Register the toplist-independent backbone: the CDN and every partner's
/// HB + waterfall endpoints. O(catalog), shared by the eager and lazy
/// world builders.
fn register_backbone(
    router: &mut Router,
    latency: &mut HostDirectory,
    specs: &[PartnerSpec],
    profiles: &[PartnerProfile],
) {
    latency.set_default(LatencyModel::log_normal(90.0, 0.4));

    // CDN.
    router.register(CDN_HOST, |r: &Request, _: &mut Rng| {
        ServerReply::instant(Response::text(r.id, "// library"))
    });
    latency.insert(CDN_HOST, LatencyModel::log_normal(18.0, 0.25).with_floor(4.0));

    // Partner endpoints: every partner serves both the HB bid path and the
    // waterfall RTB path on the same host.
    for (spec, profile) in specs.iter().zip(profiles.iter()) {
        let host = spec.host();
        let hb = partner_endpoint(profile.clone());
        let wf = waterfall_endpoint(
            // Waterfall fill rates are higher than clean-profile HB bid
            // rates (networks monetize remnant aggressively).
            (spec.bid_rate * 4.0).min(0.85),
            profile.price.clone(),
            6.0,
        );
        router.register(host.clone(), move |req: &Request, rng: &mut Rng| {
            if req.url.path.starts_with("/rtb/") {
                wf.handle(req, rng)
            } else {
                hb.handle(req, rng)
            }
        });
        latency.insert(host.clone(), profile.latency.clone());
        // Waterfall tags hit warm, keep-alive ad-server paths on a separate
        // edge (`rtb.<host>`): one hop there is far cheaper than a cold
        // header-auction fan-out, which is what makes the waterfall
        // baseline faster per request (abstract's 3x claim).
        let wf_edge = waterfall_endpoint(
            (spec.bid_rate * 4.0).min(0.85),
            profile.price.clone(),
            4.0,
        );
        let rtb_host = HStr::from_display(format_args!("rtb.{host}"));
        router.register(rtb_host.clone(), move |req: &Request, rng: &mut Rng| {
            wf_edge.handle(req, rng)
        });
        latency.insert(rtb_host, LatencyModel::log_normal(82.0, 0.35).with_floor(15.0));
    }
}

/// Build the world for a set of sites.
pub fn build_world(
    sites: &[SiteProfile],
    specs: &[PartnerSpec],
    profiles: &[PartnerProfile],
) -> World {
    let mut router = Router::new();
    let mut latency = HostDirectory::new();
    register_backbone(&mut router, &mut latency, specs, profiles);
    let shared: Vec<Arc<PartnerProfile>> =
        profiles.iter().cloned().map(Arc::new).collect();

    // Provider ad servers (one endpoint per provider host, holding the
    // accounts of every site that chose it).
    let mut provider_accounts: std::collections::HashMap<usize, Vec<AdServerAccount>> =
        std::collections::HashMap::new();
    for site in sites {
        if let Some(pid) = site.provider_id {
            provider_accounts
                .entry(pid)
                .or_default()
                .push(account_for(site, &shared));
        }
    }
    for (pid, accounts) in provider_accounts {
        let host = specs[pid].host();
        // The provider host already serves partner traffic; give the ad
        // server its own subdomain, mirroring ad.doubleclick.net.
        let ads_host = HStr::from_display(format_args!("ads.{host}"));
        router.register(ads_host.clone(), AdServerEndpoint::new(accounts));
        latency.insert(ads_host, specs[pid].to_profile(0).latency.clone());
    }

    // Publisher pages + own ad servers (interned `HStr` hosts end to end:
    // registration clones the compact handle instead of fresh `String`s).
    for site in sites {
        let html = hb_http::HStr::from(page_html(site, specs));
        router.register(site.domain.clone(), move |r: &Request, _: &mut Rng| {
            ServerReply::instant(Response::text(r.id, html.clone()))
        });
        latency.insert(site.domain.clone(), page_latency_model(site));
        if site.facet == Some(hb_adtech::HbFacet::ClientSide) {
            let host = site.own_ad_server_host();
            router.register(
                host.clone(),
                AdServerEndpoint::new([account_for(site, &shared)]),
            );
            latency.insert(host, own_ads_latency_model(site));
        }
    }

    World { router, latency }
}

/// Endpoint synthesizing publisher pages and publisher-owned ad servers on
/// demand from the hostname (`pub{rank}.example` / `ads.pub{rank}.example`).
/// Derivation is pure in `(seed, rank)`, so replies are byte-identical to
/// the eager per-site registrations.
struct PublisherEndpoint {
    gen: Arc<SiteGen>,
    /// Shared resolver-backed ad server for every client-side site's own
    /// `ads.pub{rank}.example` host.
    own_ads: AdServerEndpoint,
}

impl PublisherEndpoint {
    fn new(gen: &Arc<SiteGen>) -> PublisherEndpoint {
        let g = gen.clone();
        let own_ads = AdServerEndpoint::with_resolver(move |account_id| {
            let rank = g.rank_of_account(account_id)?;
            let site = g.site_shared(rank);
            // Mirror the eager world: only client-side sites operate an
            // ad server of their own.
            (site.facet == Some(hb_adtech::HbFacet::ClientSide))
                .then(|| g.account_shared(rank))
        });
        PublisherEndpoint {
            gen: gen.clone(),
            own_ads,
        }
    }
}

impl Endpoint for PublisherEndpoint {
    fn handle(&self, req: &Request, rng: &mut Rng) -> ServerReply {
        let host = &req.url.host;
        if let Some(rank) = self.gen.rank_of_page_host(host) {
            // Memoized and shared: rendering the page document per request
            // used to be the costliest repeated derivation on the visit
            // hot path; now the response body is a clone of one `Arc<str>`.
            let html = self.gen.page_html_shared(rank);
            return ServerReply::instant(Response::text(req.id, html));
        }
        if let Some(rest) = host.strip_prefix("ads.") {
            if self.gen.rank_of_page_host(rest).is_some() {
                return self.own_ads.handle(req, rng);
            }
        }
        ServerReply::instant(Response::error(req.id, hb_http::Status::NOT_FOUND))
    }
}

/// Build the lazy world over a derivation core: the partner/CDN backbone
/// and provider ad servers are registered eagerly (O(catalog)); publisher
/// pages, publisher-owned ad servers, provider *accounts* and per-site
/// latency models are synthesized on demand. Construction cost is
/// independent of `config.n_sites`.
pub fn build_lazy_world(gen: &Arc<SiteGen>) -> World {
    let mut router = Router::new();
    let mut latency = HostDirectory::new();
    register_backbone(&mut router, &mut latency, &gen.specs, &gen.profiles);

    // Provider ad servers: the hosts are known up front (the catalog's
    // ad-server partners); the per-site accounts are derived on demand.
    for (pid, _) in crate::catalog::providers(&gen.specs) {
        let host = gen.specs[pid].host();
        let ads_host = HStr::from_display(format_args!("ads.{host}"));
        let g = gen.clone();
        router.register(
            ads_host.clone(),
            AdServerEndpoint::with_resolver(move |account_id| {
                let rank = g.rank_of_account(account_id)?;
                let site = g.site_shared(rank);
                // An account exists at this provider only if the site
                // actually chose it (mirrors the eager registration).
                (site.provider_id == Some(pid)).then(|| g.account_shared(rank))
            }),
        );
        latency.insert(ads_host, gen.specs[pid].to_profile(0).latency.clone());
    }

    // Catch-all for the publisher namespace: every `pub{rank}.example`
    // page (and its `ads.` subdomain) resolves through one endpoint.
    // Exact registrations (partners, CDN, providers) take precedence.
    router.register_domain("example", PublisherEndpoint::new(gen));

    // Per-site latency models, derived from the profile on demand. The
    // eager world resolves `ads.pub{rank}.example` for non-client sites
    // through the suffix walk to the page host's model; mirror that.
    let g = gen.clone();
    latency.set_dynamic(move |host| {
        if let Some(rank) = g.rank_of_page_host(host) {
            return Some(page_latency_model(&g.site_shared(rank)));
        }
        if let Some(rest) = host.strip_prefix("ads.") {
            if let Some(rank) = g.rank_of_page_host(rest) {
                let site = g.site_shared(rank);
                return Some(if site.facet == Some(hb_adtech::HbFacet::ClientSide) {
                    own_ads_latency_model(&site)
                } else {
                    page_latency_model(&site)
                });
            }
        }
        None
    });

    World { router, latency }
}

/// Host of the ad server a site's wrapper talks to.
pub fn ad_server_host_for(site: &SiteProfile, specs: &[PartnerSpec]) -> HStr {
    match (site.facet, site.provider_id) {
        (Some(hb_adtech::HbFacet::ClientSide), _) | (None, _) => site.own_ad_server_host(),
        (_, Some(pid)) => HStr::from_display(format_args!("ads.{}", specs[pid].host())),
        _ => site.own_ad_server_host(),
    }
}

/// Precomputed per-universe runtime-construction tables: one
/// [`PartnerRef`] and one provider ads-host per partner id, built once
/// (the factory owns them) so deriving a [`SiteRuntime`](hb_adtech::SiteRuntime)
/// clones compact handles instead of re-rendering hostnames.
pub struct RuntimeCtx {
    /// Partner references (index = partner id).
    pub refs: Vec<PartnerRef>,
    /// Provider ad-server hosts, `ads.{partner host}` (index = partner id).
    pub ads_hosts: Vec<HStr>,
    /// Ad-path robustness policy stamped into every derived runtime
    /// (scenario axis; [`RobustnessPolicy::off`] outside degraded runs).
    pub robustness: RobustnessPolicy,
}

impl RuntimeCtx {
    /// Build the tables from the catalog (O(catalog), once per universe).
    pub fn new(specs: &[PartnerSpec]) -> RuntimeCtx {
        let ids: Vec<usize> = (0..specs.len()).collect();
        RuntimeCtx {
            refs: partner_refs(specs, &ids),
            ads_hosts: specs
                .iter()
                .map(|s| HStr::from_display(format_args!("ads.{}", s.host())))
                .collect(),
            robustness: RobustnessPolicy::off(),
        }
    }

    /// Builder: stamp a robustness policy into derived runtimes.
    pub fn with_robustness(mut self, policy: RobustnessPolicy) -> RuntimeCtx {
        self.robustness = policy;
        self
    }
}

/// Build the per-visit [`SiteRuntime`](hb_adtech::SiteRuntime).
/// Convenience wrapper over [`site_runtime_with`] that builds a throwaway
/// [`RuntimeCtx`]; the factory path reuses one per universe.
pub fn site_runtime(
    site: &SiteProfile,
    specs: &[PartnerSpec],
) -> hb_adtech::SiteRuntime {
    site_runtime_with(site, &RuntimeCtx::new(specs))
}

/// Build the per-visit [`SiteRuntime`](hb_adtech::SiteRuntime) from the
/// precomputed tables: partner refs and hostnames are cheap handle
/// clones, ids are stack-rendered, ad units are `Arc`-shared with the
/// profile — a memo-missed runtime derivation performs no transient
/// allocation beyond the vectors that escape into the runtime itself.
pub fn site_runtime_with(site: &SiteProfile, ctx: &RuntimeCtx) -> hb_adtech::SiteRuntime {
    let ad_server_host = match (site.facet, site.provider_id) {
        (Some(hb_adtech::HbFacet::ClientSide), _) | (None, _) => site.own_ad_server_host(),
        (_, Some(pid)) => ctx.ads_hosts[pid].clone(),
        _ => site.own_ad_server_host(),
    };
    hb_adtech::SiteRuntime {
        // Equivalent to parsing `site.url_string()` ("https://<domain>/"),
        // without rendering and re-parsing the string.
        page_url: hb_http::Url::https(&site.domain, "/"),
        rank: site.rank,
        facet: site.facet,
        ad_units: site.ad_units.clone(),
        client_partners: site
            .client_partner_ids
            .iter()
            .map(|&i| ctx.refs[i].clone())
            .collect(),
        ad_server_host,
        account_id: site.account_id(),
        wrapper: site.wrapper.clone(),
        waterfall_tiers: site
            .waterfall_tier_ids
            .iter()
            .map(|&i| hb_adtech::WaterfallTier {
                partner: ctx.refs[i].clone(),
                floor: hb_adtech::Cpm(site.floor),
            })
            .collect(),
        cdn_host: hb_http::HStr::from_static(CDN_HOST),
        render_fail_rate: 0.015,
        net_quality: site.net_quality,
        robustness: ctx.robustness.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::config::EcosystemConfig;
    use crate::publisher::generate_site;

    fn small_world() -> (Vec<SiteProfile>, Vec<PartnerSpec>, World) {
        let cfg = EcosystemConfig::tiny_scale();
        let specs = catalog::catalog();
        let providers = catalog::providers(&specs);
        let pool = catalog::s2s_pool(&specs);
        let profiles = catalog::profiles(&specs);
        let root = Rng::new(5);
        let sites: Vec<SiteProfile> = (1..=cfg.n_sites)
            .map(|rank| {
                let mut rng = root.derive(rank as u64);
                generate_site(&cfg, &specs, &providers, &pool, rank, &mut rng)
            })
            .collect();
        let world = build_world(&sites, &specs, &profiles);
        (sites, specs, world)
    }

    #[test]
    fn every_page_host_routes() {
        let (sites, _, world) = small_world();
        for site in &sites {
            assert!(
                world.router.resolve(&site.domain).is_some(),
                "{} unroutable",
                site.domain
            );
        }
    }

    #[test]
    fn partner_hosts_route_and_have_latency() {
        let (_, specs, world) = small_world();
        let mut rng = Rng::new(1);
        for spec in &specs {
            let host = spec.host();
            assert!(world.router.resolve(&host).is_some(), "{host}");
            let sample = world.latency.lookup(&host).sample(&mut rng);
            assert!(sample.as_micros() > 0);
        }
    }

    #[test]
    fn client_sites_get_own_ad_server() {
        let (sites, specs, world) = small_world();
        let mut seen = false;
        for site in sites
            .iter()
            .filter(|s| s.facet == Some(hb_adtech::HbFacet::ClientSide))
        {
            seen = true;
            let host = ad_server_host_for(site, &specs);
            assert_eq!(host, site.own_ad_server_host());
            assert!(world.router.resolve(&host).is_some(), "{host}");
        }
        assert!(seen, "tiny world should include client-side sites");
    }

    #[test]
    fn provider_sites_point_at_provider_ads_host() {
        let (sites, specs, world) = small_world();
        for site in sites.iter().filter(|s| s.provider_id.is_some()) {
            let host = ad_server_host_for(site, &specs);
            assert!(host.starts_with("ads."));
            assert!(host.ends_with("-adnet.example"));
            assert!(world.router.resolve(&host).is_some(), "{host}");
        }
    }

    #[test]
    fn page_html_reflects_hb_configuration() {
        let (sites, specs, _) = small_world();
        let hb_site = sites.iter().find(|s| s.facet.is_some()).unwrap();
        let html = page_html(hb_site, &specs);
        assert!(html.contains("prebid.js"));
        assert!(html.contains("ad-slot-1"));
        let plain = sites.iter().find(|s| s.facet.is_none()).unwrap();
        let html2 = page_html(plain, &specs);
        assert!(!html2.contains("prebid.js"));
    }

    #[test]
    fn lazy_world_matches_eager_world() {
        // The lazy world's claim is byte-parity with the eager one:
        // identical page bodies, identical latency models, identical
        // ad-server decisions for the same (request, rng). Exercise every
        // site of the tiny universe against both worlds.
        use hb_http::{Request, RequestId};

        let cfg = EcosystemConfig::tiny_scale();
        let gen = std::sync::Arc::new(crate::factory::SiteGen::new(cfg.clone()));
        let sites: Vec<SiteProfile> = (1..=cfg.n_sites).map(|r| gen.site(r)).collect();
        let eager = build_world(&sites, &gen.specs, &gen.profiles);
        let lazy = crate::world::build_lazy_world(&gen);

        let body_of = |world: &World, req: &Request, seed: u64| {
            let mut rng = Rng::new(seed);
            world
                .router
                .dispatch(req, &mut rng)
                .map(|r| (r.response.status.0, r.response.body.as_text()))
        };
        for site in &sites {
            // Page endpoint parity.
            let page = Request::get(
                RequestId(1),
                hb_http::Url::parse(&site.url_string()).unwrap(),
            );
            assert_eq!(
                body_of(&eager, &page, site.rank as u64),
                body_of(&lazy, &page, site.rank as u64),
                "page body differs for {}",
                site.domain
            );
            // Latency-model parity for the page host and its ads host
            // (the lazy side resolves both dynamically).
            for host in [site.domain.clone(), site.own_ad_server_host()] {
                let mut a = Rng::new(site.rank as u64);
                let mut b = Rng::new(site.rank as u64);
                assert_eq!(
                    eager.latency.lookup(&host).sample(&mut a),
                    lazy.latency.lookup(&host).sample(&mut b),
                    "latency model differs for {host}"
                );
            }
            // Ad-server parity: same decisioning reply from the host the
            // wrapper would actually contact (resolver-derived accounts
            // must equal the eager registrations).
            if site.facet.is_some() {
                let ads_host = ad_server_host_for(site, &gen.specs);
                let req = Request::get(
                    RequestId(2),
                    hb_http::Url::https(&ads_host, hb_adtech::protocol::paths::AD_SERVER)
                        .with_param("account", site.account_id()),
                );
                let a = body_of(&eager, &req, 1000 + site.rank as u64);
                let b = body_of(&lazy, &req, 1000 + site.rank as u64);
                assert!(a.is_some(), "eager world drops {ads_host}");
                assert_eq!(a, b, "ad-server reply differs for {}", site.domain);
            }
        }
    }

    #[test]
    fn site_runtime_is_complete() {
        let (sites, specs, _) = small_world();
        let site = sites.iter().find(|s| s.facet.is_some()).unwrap();
        let rt = site_runtime(site, &specs);
        assert_eq!(rt.rank, site.rank);
        assert_eq!(rt.ad_units.len(), site.ad_units.len());
        assert_eq!(rt.client_partners.len(), site.client_partner_ids.len());
        assert!(!rt.waterfall_tiers.is_empty());
        assert_eq!(rt.cdn_host, CDN_HOST);
    }
}
