//! One crawl session: a clean-slate browser visit to one site with the
//! detector attached.
//!
//! Reproduces the paper's §3.2 methodology: a fresh browser instance per
//! visit (no cookies, no history), a 60-second page-load timeout, and an
//! extra 5-second settle window after load for pending responses.

use crate::dataset::TruthRecord;
use hb_adtech::{begin_visit, Net, PageWorld, SiteRuntime, VisitGroundTruth};
use hb_core::{HbDetector, Interner, PartnerList, VisitColumns, VisitRecord};
use hb_dom::Browser;
use hb_http::MsgScratch;
use hb_simnet::{Rng, SimDuration, Simulation, SimTime};
use std::sync::Arc;

/// Session policy knobs (paper defaults).
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Hard page timeout (paper: 60 s).
    pub page_timeout: SimDuration,
    /// Extra settle window after load (paper: 5 s).
    pub settle: SimDuration,
    /// Event budget guarding against runaway simulations.
    pub max_events: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            page_timeout: SimDuration::from_secs(60),
            settle: SimDuration::from_secs(5),
            max_events: 100_000,
        }
    }
}

/// The outcome of one visit: what the detector saw and what actually
/// happened (ground truth, used for validation and the waterfall baseline).
#[derive(Clone, Debug)]
pub struct SiteVisit {
    /// The detector's record.
    pub record: VisitRecord,
    /// Simulation ground truth.
    pub truth: VisitGroundTruth,
    /// Whether the page finished loading within the timeout.
    pub page_completed: bool,
}

/// Per-worker visit execution state, reused across visits: one pooled
/// [`Simulation`] whose world holds the browser (with the detector's taps
/// attached once) and the HTTP-layer buffer pool, plus the detector's
/// accumulation buffers. One `VisitScratch` per crawl worker turns the
/// per-visit setup — simulation construction (event slab, heap, callback
/// pool), browser construction, tap registration, request-map allocation,
/// query-buffer churn — into amortized one-time cost: a steady-state
/// visit re-arms everything in place via [`Simulation::reset_in_place`].
pub struct VisitScratch {
    sim: Option<Simulation<PageWorld>>,
    detector: HbDetector,
}

impl VisitScratch {
    /// Build a worker's scratch around the campaign's shared partner list.
    pub fn new(list: Arc<PartnerList>) -> VisitScratch {
        VisitScratch {
            sim: None,
            detector: HbDetector::with_list(list),
        }
    }
}

/// Crawl one site once. Strings in the resulting record are interned into
/// `strings` — per campaign, each worker passes its own interner and the
/// collector re-interns into the campaign-wide one.
///
/// Convenience wrapper over [`crawl_site_pooled`] that builds (and drops)
/// a fresh [`VisitScratch`]; tests and examples use this, the campaign
/// keeps one scratch per worker.
pub fn crawl_site(
    net: Net,
    runtime: SiteRuntime,
    list: Arc<PartnerList>,
    rng: Rng,
    day: u32,
    cfg: &SessionConfig,
    strings: &mut Interner,
) -> SiteVisit {
    let mut scratch = VisitScratch::new(list);
    crawl_site_pooled(net, Arc::new(runtime), rng, day, cfg, strings, &mut scratch)
}

/// Outcome flags of one visit appended through [`crawl_site_into`].
#[derive(Clone, Copy, Debug)]
pub struct VisitOutcome {
    /// Whether the page finished loading within the timeout.
    pub page_completed: bool,
}

/// Drive one visit's simulation on the pooled scratch, leaving the
/// detector's observation state and the world's ground truth populated.
/// Returns the page-timing facts every finisher needs.
fn simulate_visit(
    net: Net,
    runtime: &Arc<SiteRuntime>,
    rng: Rng,
    cfg: &SessionConfig,
    scratch: &mut VisitScratch,
) -> VisitOutcome {
    let detector = &scratch.detector;
    let sim = match &mut scratch.sim {
        Some(sim) => {
            // Steady state: re-arm the pooled simulation and its world in
            // place. `reset_in_place` rewinds the clock and recycles the
            // event slab + callback pool; the world keeps its browser
            // (taps attached) and buffer pools.
            let w = sim.reset_in_place();
            w.browser.reset_for_visit(runtime.page_url.clone(), SimTime::ZERO);
            w.reset_for_visit(net, rng);
            detector.reset();
            sim
        }
        None => {
            let mut b = Browser::open_untraced(runtime.page_url.clone(), SimTime::ZERO);
            detector.attach(&mut b);
            let world = PageWorld::from_parts(b, net, rng, MsgScratch::new());
            scratch.sim.insert(Simulation::new(world))
        }
    };
    {
        let rt = runtime.clone();
        sim.scheduler()
            .after(SimDuration::ZERO, move |w: &mut PageWorld, s| {
                begin_visit(w, s, rt);
            });
    }
    // Phase 1: run until the page deadline.
    sim.run_until(SimTime::ZERO + cfg.page_timeout, cfg.max_events);
    // Phase 2: settle window — the crawler waits a bit longer after load
    // for pending responses (this is what surfaces late bids).
    let loaded_at = sim.world().browser.page.loaded.unwrap_or_else(|| sim.now());
    let settle_deadline = (loaded_at + cfg.settle).max(sim.now());
    sim.run_until(settle_deadline.min(SimTime::ZERO + cfg.page_timeout + cfg.settle), cfg.max_events);
    VisitOutcome {
        page_completed: sim.world().browser.page.loaded.is_some(),
    }
}

/// [`crawl_site`] over a worker-owned [`VisitScratch`]: the browser,
/// detector state and message buffers are reused from the previous visit
/// on this worker, so a steady-state visit performs near-zero transient
/// allocation outside the payloads that escape into the returned
/// [`SiteVisit`].
pub fn crawl_site_pooled(
    net: Net,
    runtime: Arc<SiteRuntime>,
    rng: Rng,
    day: u32,
    cfg: &SessionConfig,
    strings: &mut Interner,
    scratch: &mut VisitScratch,
) -> SiteVisit {
    let rank = runtime.rank;
    let domain = runtime.page_url.host.clone();
    let outcome = simulate_visit(net, &runtime, rng, cfg, scratch);
    let world = scratch.sim.as_mut().expect("simulated").world_mut();
    let page_load_ms = world
        .browser
        .page
        .page_load_time()
        .map(|d| d.as_millis_f64());
    let record = scratch.detector.finish(&domain, rank, day, page_load_ms, strings);
    // Only the ground truth leaves the world; the simulation (browser,
    // pools, event storage) stays in the scratch for the next visit.
    SiteVisit {
        record,
        truth: std::mem::take(&mut world.flow.truth),
        page_completed: outcome.page_completed,
    }
}

/// The campaign hot path: crawl one site on the pooled scratch and append
/// the outcome **directly into columnar storage** — the detector streams
/// bids/slots/latencies into `cols` through a
/// [`VisitBuilder`](hb_core::VisitBuilder) row, and the ground truth is
/// flattened into `truths` straight from the world (no owned
/// [`SiteVisit`]/[`VisitRecord`] is ever materialized, so nothing escapes
/// the visit but the column tails themselves).
#[allow(clippy::too_many_arguments)]
pub fn crawl_site_into(
    net: Net,
    runtime: Arc<SiteRuntime>,
    rng: Rng,
    day: u32,
    cfg: &SessionConfig,
    strings: &mut Interner,
    scratch: &mut VisitScratch,
    cols: &mut VisitColumns,
    truths: &mut Vec<TruthRecord>,
) -> VisitOutcome {
    let rank = runtime.rank;
    let domain = runtime.page_url.host.clone();
    let outcome = simulate_visit(net, &runtime, rng, cfg, scratch);
    let world = scratch.sim.as_mut().expect("simulated").world_mut();
    let page_load_ms = world
        .browser
        .page
        .page_load_time()
        .map(|d| d.as_millis_f64());
    scratch
        .detector
        .finish_into(&domain, rank, day, page_load_ms, strings, cols);
    // Flatten the truth by reference — the winners vector and the rest of
    // the world's per-visit state stay in the pooled world for reuse.
    truths.push(TruthRecord::from_truth(rank, day, &world.flow.truth));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ecosystem::{Ecosystem, EcosystemConfig};

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::tiny_scale())
    }

    #[test]
    fn hb_site_detected_with_correct_facet() {
        let eco = eco();
        let mut strings = Interner::new();
        let mut checked = 0;
        for site in eco.hb_sites().take(12) {
            let visit = crawl_site(
                eco.net(),
                eco.runtime_for(site),
                eco.partner_list(),
                eco.visit_rng(site.rank, 0),
                0,
                &SessionConfig::default(),
                &mut strings,
            );
            assert!(visit.record.hb_detected, "{} not detected", site.domain);
            let truth_label = site.facet.unwrap().label();
            let detected_label = visit.record.facet.map(|f| f.label()).unwrap_or("none");
            assert_eq!(
                truth_label, detected_label,
                "facet mismatch on {}",
                site.domain
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn waterfall_site_not_detected() {
        let eco = eco();
        let mut strings = Interner::new();
        let site = eco.sites().iter().find(|s| s.facet.is_none()).unwrap();
        let visit = crawl_site(
            eco.net(),
            eco.runtime_for(site),
            eco.partner_list(),
            eco.visit_rng(site.rank, 0),
            0,
            &SessionConfig::default(),
            &mut strings,
        );
        assert!(!visit.record.hb_detected);
        assert!(visit.truth.waterfall_latency.is_some());
        assert!(visit.page_completed);
    }

    #[test]
    fn pooled_visits_match_one_shot_visits() {
        // The invariant behind the campaign's pooled path: a worker's
        // Nth reused-scratch visit must simulate identically to a fresh
        // one-shot crawl of the same (site, day). Catches any state a
        // future Browser/HbDetector field leaks across reset_for_visit /
        // reset.
        let eco = eco();
        let mut scratch = VisitScratch::new(eco.partner_list());
        let sites: Vec<_> = eco
            .hb_sites()
            .take(3)
            .chain(eco.sites().iter().filter(|s| s.facet.is_none()).take(2))
            .collect();
        for (day, site) in sites.into_iter().enumerate() {
            let day = day as u32;
            let mut pooled_strings = Interner::new();
            let pooled = crawl_site_pooled(
                eco.net(),
                eco.runtime_shared(site.rank),
                eco.visit_rng(site.rank, day),
                day,
                &SessionConfig::default(),
                &mut pooled_strings,
                &mut scratch,
            );
            let mut fresh_strings = Interner::new();
            let fresh = crawl_site(
                eco.net(),
                eco.runtime_for(site),
                eco.partner_list(),
                eco.visit_rng(site.rank, day),
                day,
                &SessionConfig::default(),
                &mut fresh_strings,
            );
            assert_eq!(pooled.record.hb_detected, fresh.record.hb_detected);
            assert_eq!(pooled.record.facet, fresh.record.facet);
            assert_eq!(pooled.record.hb_latency_ms, fresh.record.hb_latency_ms);
            assert_eq!(pooled.record.page_load_ms, fresh.record.page_load_ms);
            assert_eq!(pooled.record.bids.len(), fresh.record.bids.len());
            assert_eq!(pooled.record.slots.len(), fresh.record.slots.len());
            assert_eq!(pooled.page_completed, fresh.page_completed);
            assert_eq!(pooled.truth.client_bids, fresh.truth.client_bids);
            assert_eq!(pooled.truth.late_bids, fresh.truth.late_bids);
            assert_eq!(pooled.truth.winners, fresh.truth.winners);
            assert_eq!(
                pooled.truth.adserver_response_at,
                fresh.truth.adserver_response_at
            );
            assert_eq!(
                pooled.truth.waterfall_latency,
                fresh.truth.waterfall_latency
            );
            // Symbol numbering matches because both sides interned the
            // same strings into fresh interners in the same order.
            assert_eq!(pooled.record.partners.len(), fresh.record.partners.len());
            for (a, b) in pooled.record.partners.iter().zip(&fresh.record.partners) {
                assert_eq!(pooled_strings.resolve(*a), fresh_strings.resolve(*b));
            }
        }
    }

    #[test]
    fn visits_are_deterministic() {
        let eco = eco();
        let site = eco.hb_sites().next().unwrap();
        let run = || {
            crawl_site(
                eco.net(),
                eco.runtime_for(site),
                eco.partner_list(),
                eco.visit_rng(site.rank, 1),
                1,
                &SessionConfig::default(),
                &mut Interner::new(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.record.hb_latency_ms, b.record.hb_latency_ms);
        assert_eq!(a.record.bids.len(), b.record.bids.len());
        assert_eq!(
            a.truth.adserver_response_at,
            b.truth.adserver_response_at
        );
    }

    #[test]
    fn different_days_differ() {
        let eco = eco();
        let mut strings = Interner::new();
        // Latency samples differ day to day for at least one site.
        let mut any_diff = false;
        for site in eco.hb_sites().take(5) {
            let a = crawl_site(
                eco.net(),
                eco.runtime_for(site),
                eco.partner_list(),
                eco.visit_rng(site.rank, 0),
                0,
                &SessionConfig::default(),
                &mut strings,
            );
            let b = crawl_site(
                eco.net(),
                eco.runtime_for(site),
                eco.partner_list(),
                eco.visit_rng(site.rank, 1),
                1,
                &SessionConfig::default(),
                &mut strings,
            );
            if a.record.hb_latency_ms != b.record.hb_latency_ms {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn detector_latency_close_to_ground_truth() {
        let eco = eco();
        let mut strings = Interner::new();
        for site in eco.hb_sites().take(8) {
            let visit = crawl_site(
                eco.net(),
                eco.runtime_for(site),
                eco.partner_list(),
                eco.visit_rng(site.rank, 2),
                2,
                &SessionConfig::default(),
                &mut strings,
            );
            let (Some(det), Some(truth)) = (
                visit.record.hb_latency_ms,
                visit.truth.hb_latency().map(|d| d.as_millis_f64()),
            ) else {
                continue;
            };
            // The detector measures network-level completion; ground truth
            // marks the JS handler; they must agree within the JS service
            // noise (~10ms).
            assert!(
                (det - truth).abs() < 20.0,
                "{}: detector {det} vs truth {truth}",
                site.domain
            );
        }
    }
}
