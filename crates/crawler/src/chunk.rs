//! Per-shard columnar chunks: the streaming unit between the crawl
//! workers and everything downstream.
//!
//! A chunk holds a contiguous run of finished visits of one `(day, shard)`
//! batch, stored columnar ([`VisitColumns`]) with the ground truth already
//! flattened to [`TruthRecord`]s and strings interned into a chunk-local
//! [`Interner`]. Chunks are self-contained — they can cross thread (or,
//! serialized, machine) boundaries without referencing any campaign-wide
//! state — and carry a deterministic `(day, shard, seq)` key so any
//! collection of chunks merges into the same dataset regardless of the
//! order it was produced in.

use crate::dataset::TruthRecord;
use hb_core::{Interner, VisitColumns};

/// One sealed batch of finished visits from a crawl shard.
#[derive(Clone, Debug)]
pub struct VisitChunk {
    /// Crawl day the visits belong to (0 = adoption sweep).
    pub day: u32,
    /// Shard that produced the chunk.
    pub shard: u32,
    /// Position of this chunk within its `(day, shard)` batch.
    pub seq: u32,
    /// Columnar visit records (symbols resolve against `strings`).
    pub visits: VisitColumns,
    /// Flattened ground truth, parallel to `visits`.
    pub truths: Vec<TruthRecord>,
    /// Chunk-local interner the visit symbols resolve against.
    pub strings: Interner,
}

impl VisitChunk {
    /// The deterministic merge key.
    pub fn key(&self) -> (u32, u32, u32) {
        (self.day, self.shard, self.seq)
    }

    /// Number of visits in the chunk.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// True when the chunk holds no visits.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }
}
