//! Per-shard columnar chunks: the streaming unit between the crawl
//! workers and everything downstream.
//!
//! A chunk holds a contiguous run of finished visits of one `(day, shard)`
//! batch, stored columnar ([`VisitColumns`]) with the ground truth already
//! flattened to [`TruthRecord`]s and strings interned into a chunk-local
//! [`Interner`]. Chunks are self-contained — they can cross thread (or,
//! serialized, machine) boundaries without referencing any campaign-wide
//! state — and carry a deterministic `(day, shard, seq)` key so any
//! collection of chunks merges into the same dataset regardless of the
//! order it was produced in.

use crate::dataset::TruthRecord;
use hb_core::{
    decode_columns, decode_interner, encode_columns, encode_interner, open_frame, seal_frame_into,
    Interner, VisitColumns, WireError, WireReader, WireWriter,
};

/// One sealed batch of finished visits from a crawl shard.
#[derive(Clone, Debug)]
pub struct VisitChunk {
    /// Crawl day the visits belong to (0 = adoption sweep).
    pub day: u32,
    /// Shard that produced the chunk.
    pub shard: u32,
    /// Position of this chunk within its `(day, shard)` batch.
    pub seq: u32,
    /// Columnar visit records (symbols resolve against `strings`).
    pub visits: VisitColumns,
    /// Flattened ground truth, parallel to `visits`.
    pub truths: Vec<TruthRecord>,
    /// Chunk-local interner the visit symbols resolve against.
    pub strings: Interner,
}

impl VisitChunk {
    /// The deterministic merge key.
    pub fn key(&self) -> (u32, u32, u32) {
        (self.day, self.shard, self.seq)
    }

    /// Number of visits in the chunk.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// True when the chunk holds no visits.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }

    /// Encode the chunk as one sealed wire frame (see
    /// `hb_core::columns::wire` for the frame layout): key, columns,
    /// flattened truths and the chunk-local interner, integrity-checked
    /// end to end. The frame is fully self-contained — [`VisitChunk::
    /// decode`] on any machine reproduces the chunk byte-for-byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.day);
        w.u32(self.shard);
        w.u32(self.seq);
        encode_interner(&self.strings, &mut w);
        encode_columns(&self.visits, &mut w);
        w.len(self.truths.len());
        for t in &self.truths {
            w.u32(t.rank);
            w.u32(t.day);
            w.u8(truth_facet_tag(t.facet));
            w.u32(t.slots);
            w.u32(t.client_bids);
            w.u32(t.late_bids);
            w.opt_f64(t.hb_latency_ms);
            w.opt_f64(t.waterfall_latency_ms);
            w.u32(t.hb_wins);
            w.f64(t.revenue_cpm);
            w.u32(t.bids_dropped);
            w.u32(t.retries);
            w.u32(t.timed_out_partners);
            w.bool(t.passback_served);
        }
        let payload = w.into_bytes();
        let mut frame = Vec::new();
        seal_frame_into(&payload, &mut frame);
        frame
    }

    /// Decode a sealed chunk frame. Magic, version, length and checksum
    /// are verified before any parsing; structural validation (symbol
    /// bounds, offset monotonicity, enum tags) rejects frames that pass
    /// the checksum but violate the format. A corrupt frame is an `Err`,
    /// never a panic and never a half-decoded chunk.
    pub fn decode(frame: &[u8]) -> Result<VisitChunk, WireError> {
        let payload = open_frame(frame)?;
        let mut r = WireReader::new(payload);
        let day = r.u32()?;
        let shard = r.u32()?;
        let seq = r.u32()?;
        let strings = decode_interner(&mut r)?;
        let visits = decode_columns(&mut r, strings.len())?;
        let n_truths = r.bounded_len(43)?;
        let mut truths = Vec::with_capacity(n_truths);
        for _ in 0..n_truths {
            truths.push(TruthRecord {
                rank: r.u32()?,
                day: r.u32()?,
                facet: truth_facet_from_tag(r.u8()?)?,
                slots: r.u32()?,
                client_bids: r.u32()?,
                late_bids: r.u32()?,
                hb_latency_ms: r.opt_f64()?,
                waterfall_latency_ms: r.opt_f64()?,
                hb_wins: r.u32()?,
                revenue_cpm: r.f64()?,
                bids_dropped: r.u32()?,
                retries: r.u32()?,
                timed_out_partners: r.u32()?,
                passback_served: r.bool()?,
            });
        }
        r.finish()?;
        Ok(VisitChunk {
            day,
            shard,
            seq,
            visits,
            truths,
            strings,
        })
    }
}

/// The ground-truth facet label set is closed (`TruthRecord::facet` is a
/// `&'static str` for exactly this reason), so it wires as one tag byte.
fn truth_facet_tag(label: &str) -> u8 {
    match label {
        "none" => 0,
        "client-side" => 1,
        "server-side" => 2,
        "hybrid" => 3,
        _ => unreachable!("closed facet label set: {label}"),
    }
}

fn truth_facet_from_tag(tag: u8) -> Result<&'static str, WireError> {
    Ok(match tag {
        0 => "none",
        1 => "client-side",
        2 => "server-side",
        3 => "hybrid",
        _ => return Err(WireError::Corrupt("truth facet tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{crawl_shard, CampaignConfig};
    use hb_ecosystem::{Ecosystem, EcosystemConfig};

    /// Chunks from a real tiny crawl survive the wire byte-for-byte:
    /// identical key, interner numbering, visit rows and truths.
    #[test]
    fn real_chunks_round_trip_the_wire() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let cfg = CampaignConfig {
            chunk_visits: 37,
            ..CampaignConfig::default()
        };
        let chunks = crawl_shard(eco.factory(), &cfg, 0);
        assert!(chunks.len() > 1, "want multiple chunks");
        for chunk in &chunks {
            let frame = chunk.encode();
            let back = VisitChunk::decode(&frame).expect("clean frame decodes");
            assert_eq!(back.key(), chunk.key());
            assert_eq!(back.len(), chunk.len());
            assert_eq!(back.strings.len(), chunk.strings.len());
            for ((sa, ta), (sb, tb)) in chunk.strings.iter().zip(back.strings.iter()) {
                assert_eq!(sa, sb);
                assert_eq!(ta, tb);
            }
            for i in 0..chunk.len() {
                let a = chunk.visits.get(i).to_record();
                let b = back.visits.get(i).to_record();
                // Same chunk-local interner numbering, so raw symbol ids
                // (not just resolved text) must agree.
                assert_eq!(a.domain, b.domain);
                assert_eq!(a.rank, b.rank);
                assert_eq!(a.day, b.day);
                assert_eq!(a.hb_detected, b.hb_detected);
                assert_eq!(a.facet, b.facet);
                assert_eq!(a.partners, b.partners);
                assert_eq!(a.slots_auctioned, b.slots_auctioned);
                assert_eq!(a.hb_latency_ms, b.hb_latency_ms);
                assert_eq!(a.page_load_ms, b.page_load_ms);
                assert_eq!(a.bids.len(), b.bids.len());
                for (x, y) in a.bids.iter().zip(b.bids.iter()) {
                    assert_eq!(x.bidder_code, y.bidder_code);
                    assert_eq!(x.cpm, y.cpm);
                    assert_eq!(x.late, y.late);
                    assert_eq!(x.latency_ms, y.latency_ms);
                }
                assert_eq!(a.event_counts, b.event_counts);
            }
            assert_eq!(back.truths.len(), chunk.truths.len());
            for (a, b) in chunk.truths.iter().zip(back.truths.iter()) {
                assert_eq!(a.rank, b.rank);
                assert_eq!(a.day, b.day);
                assert_eq!(a.facet, b.facet);
                assert_eq!(a.hb_latency_ms, b.hb_latency_ms);
                assert_eq!(a.revenue_cpm, b.revenue_cpm);
                assert_eq!(a.passback_served, b.passback_served);
            }
            // A corrupt byte anywhere in the frame is rejected.
            let mut bad = frame.clone();
            bad[frame.len() / 2] ^= 0x10;
            assert!(VisitChunk::decode(&bad).is_err());
        }
    }
}
