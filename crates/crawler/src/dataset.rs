//! The crawl dataset: flattened records plus CSV persistence.

use hb_adtech::{FillChannel, VisitGroundTruth};
use hb_core::{Interner, Symbol, VisitRecord};
use hb_stats::{csv_escape, parse_csv};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// `partners` column helper: resolved names joined with `|`.
fn joined_partners(ds: &CrawlDataset, v: &VisitRecord) -> String {
    let mut out = String::new();
    for (i, p) in v.partners.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        out.push_str(ds.str(*p));
    }
    out
}

/// Flattened ground truth for one visit (thread-transferable, CSV-friendly).
#[derive(Clone, Debug, Default)]
pub struct TruthRecord {
    /// Site rank.
    pub rank: u32,
    /// Crawl day.
    pub day: u32,
    /// Ground-truth facet label (`client-side`/`server-side`/`hybrid`/`none`).
    /// Static: the label set is closed, so flattening a visit's truth
    /// never allocates for it.
    pub facet: &'static str,
    /// Slots auctioned.
    pub slots: u32,
    /// Client-visible bids.
    pub client_bids: u32,
    /// Late bids.
    pub late_bids: u32,
    /// HB latency ms (first bid request → ad-server response).
    pub hb_latency_ms: Option<f64>,
    /// Waterfall fill latency ms (waterfall sites).
    pub waterfall_latency_ms: Option<f64>,
    /// Number of slots filled by an HB bid.
    pub hb_wins: u32,
    /// Revenue proxy: sum of clearing price buckets.
    pub revenue_cpm: f64,
    /// Bid/ad requests lost to network faults (drops, dead hosts).
    pub bids_dropped: u32,
    /// Deadline-triggered retries issued (HB partners + waterfall tiers).
    pub retries: u32,
    /// Demand sources given up on after deadline/retry exhaustion.
    pub timed_out_partners: u32,
    /// Did the wrapper fall back to house ads after total demand failure?
    pub passback_served: bool,
}

impl TruthRecord {
    /// Flatten a visit's ground truth.
    pub fn from_truth(rank: u32, day: u32, t: &VisitGroundTruth) -> TruthRecord {
        TruthRecord {
            rank,
            day,
            facet: t.facet.map(|f| f.label()).unwrap_or("none"),
            slots: t.slots_auctioned as u32,
            client_bids: t.client_bids as u32,
            late_bids: t.late_bids as u32,
            hb_latency_ms: t.hb_latency().map(|d| d.as_millis_f64()),
            waterfall_latency_ms: t.waterfall_latency.map(|d| d.as_millis_f64()),
            hb_wins: t
                .winners
                .iter()
                .filter(|w| w.channel == FillChannel::HeaderBid)
                .count() as u32,
            revenue_cpm: t.winners.iter().map(|w| w.pb.0).sum(),
            bids_dropped: t.bids_dropped as u32,
            retries: t.retries as u32,
            timed_out_partners: t.timed_out_partners as u32,
            passback_served: t.passback_served,
        }
    }
}

/// The assembled dataset of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CrawlDataset {
    /// Detector records, one per visit.
    pub visits: Vec<VisitRecord>,
    /// Ground truth, one per visit (same order not guaranteed; keyed by
    /// rank/day).
    pub truths: Vec<TruthRecord>,
    /// Number of sites in the crawled universe.
    pub n_sites: u32,
    /// Number of crawl days (excluding the day-0 adoption sweep).
    pub n_days: u32,
    /// The campaign-wide interner every record's symbols resolve against.
    /// Shared (`Arc`) so analysis indexes can outlive a borrowed dataset
    /// view without cloning the string table.
    pub strings: Arc<Interner>,
}

impl CrawlDataset {
    /// Resolve a record symbol against the campaign interner.
    pub fn str(&self, sym: Symbol) -> &str {
        self.strings.resolve(sym)
    }

    /// Visits with detected HB.
    pub fn hb_visits(&self) -> impl Iterator<Item = &VisitRecord> {
        self.visits.iter().filter(|v| v.hb_detected)
    }

    /// Distinct domains with detected HB.
    pub fn hb_domains(&self) -> Vec<&str> {
        // Dedup on cheap symbols first; resolve only the distinct set.
        let distinct: std::collections::BTreeSet<Symbol> =
            self.hb_visits().map(|r| r.domain).collect();
        let mut v: Vec<&str> = distinct.into_iter().map(|s| self.str(s)).collect();
        v.sort_unstable();
        v
    }

    /// Total auctions detected (slot-level, per the paper's Table 1).
    pub fn total_auctions(&self) -> u64 {
        self.hb_visits().map(|v| v.slots_auctioned as u64).sum()
    }

    /// Total bids detected.
    pub fn total_bids(&self) -> u64 {
        self.hb_visits().map(|v| v.bids.len() as u64).sum()
    }

    /// Distinct partner display names seen, sorted. Symbols make this a
    /// cheap integer dedup — only the distinct set is resolved.
    pub fn distinct_partners(&self) -> Vec<&str> {
        let mut set = std::collections::BTreeSet::new();
        for v in self.hb_visits() {
            set.extend(v.partners.iter().copied());
            set.extend(v.bids.iter().map(|b| b.partner_name));
        }
        let mut out: Vec<&str> = set.into_iter().map(|s| self.str(s)).collect();
        out.sort_unstable();
        out
    }

    /// Serialize the visit table to CSV.
    pub fn visits_csv(&self) -> String {
        let mut out = String::from(
            "domain,rank,day,hb_detected,facet,partners,slots,hb_latency_ms,n_bids,n_late,page_load_ms\n",
        );
        for v in &self.visits {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                csv_escape(self.str(v.domain)),
                v.rank,
                v.day,
                v.hb_detected,
                v.facet.map(|f| f.label()).unwrap_or("none"),
                csv_escape(&joined_partners(self, v)),
                v.slots_auctioned,
                v.hb_latency_ms.map(|x| format!("{x:.3}")).unwrap_or_default(),
                v.bids.len(),
                v.late_bids(),
                v.page_load_ms.map(|x| format!("{x:.1}")).unwrap_or_default(),
            );
        }
        out
    }

    /// Serialize the per-bid table to CSV.
    pub fn bids_csv(&self) -> String {
        let mut out = String::from(
            "domain,rank,day,facet,bidder,partner,slot,cpm,size,late,latency_ms,source\n",
        );
        for v in self.hb_visits() {
            for b in &v.bids {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{:.6},{},{},{},{}",
                    csv_escape(self.str(v.domain)),
                    v.rank,
                    v.day,
                    v.facet.map(|f| f.label()).unwrap_or("none"),
                    csv_escape(self.str(b.bidder_code)),
                    csv_escape(self.str(b.partner_name)),
                    csv_escape(self.str(b.slot)),
                    b.cpm,
                    self.str(b.size),
                    b.late,
                    b.latency_ms.map(|x| format!("{x:.3}")).unwrap_or_default(),
                    match b.source {
                        hb_core::BidSource::ClientVisible => "client",
                        hb_core::BidSource::ServerReported => "server",
                    },
                );
            }
        }
        out
    }

    /// Serialize the ground-truth table to CSV.
    pub fn truths_csv(&self) -> String {
        let mut out = String::from(
            "rank,day,facet,slots,client_bids,late_bids,hb_latency_ms,waterfall_latency_ms,hb_wins,revenue_cpm,bids_dropped,retries,timed_out_partners,passback_served\n",
        );
        for t in &self.truths {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{}",
                t.rank,
                t.day,
                t.facet,
                t.slots,
                t.client_bids,
                t.late_bids,
                t.hb_latency_ms.map(|x| format!("{x:.3}")).unwrap_or_default(),
                t.waterfall_latency_ms
                    .map(|x| format!("{x:.3}"))
                    .unwrap_or_default(),
                t.hb_wins,
                t.revenue_cpm,
                t.bids_dropped,
                t.retries,
                t.timed_out_partners,
                t.passback_served,
            );
        }
        out
    }

    /// Write the dataset as three CSV files under `dir`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("visits.csv"), self.visits_csv())?;
        std::fs::write(dir.join("bids.csv"), self.bids_csv())?;
        std::fs::write(dir.join("truth.csv"), self.truths_csv())?;
        Ok(())
    }

    /// Reload the ground-truth table from CSV (round-trip support for the
    /// truth records, which drive the waterfall baseline figures).
    pub fn load_truths(csv: &str) -> Vec<TruthRecord> {
        let rows = parse_csv(csv);
        rows.into_iter()
            .skip(1)
            .filter(|r| r.len() >= 10)
            .map(|r| TruthRecord {
                rank: r[0].parse().unwrap_or(0),
                day: r[1].parse().unwrap_or(0),
                facet: match r[2].as_str() {
                    "client-side" => "client-side",
                    "server-side" => "server-side",
                    "hybrid" => "hybrid",
                    _ => "none",
                },
                slots: r[3].parse().unwrap_or(0),
                client_bids: r[4].parse().unwrap_or(0),
                late_bids: r[5].parse().unwrap_or(0),
                hb_latency_ms: r[6].parse().ok(),
                waterfall_latency_ms: r[7].parse().ok(),
                hb_wins: r[8].parse().unwrap_or(0),
                revenue_cpm: r[9].parse().unwrap_or(0.0),
                // Fault columns appeared with scenario support; rows from
                // older dumps simply read as fault-free.
                bids_dropped: r.get(10).and_then(|s| s.parse().ok()).unwrap_or(0),
                retries: r.get(11).and_then(|s| s.parse().ok()).unwrap_or(0),
                timed_out_partners: r.get(12).and_then(|s| s.parse().ok()).unwrap_or(0),
                passback_served: r.get(13).map(|s| s == "true").unwrap_or(false),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::{BidSource, DetectedBid, DetectedFacet};

    fn mk_visit(strings: &mut Interner, domain: &str, rank: u32, detected: bool) -> VisitRecord {
        VisitRecord {
            domain: strings.intern(domain),
            rank,
            day: 0,
            hb_detected: detected,
            facet: detected.then_some(DetectedFacet::Client),
            partners: vec![strings.intern("AppNexus")],
            slots_auctioned: 3,
            hb_latency_ms: Some(512.0),
            bids: vec![DetectedBid {
                bidder_code: strings.intern("appnexus"),
                partner_name: strings.intern("AppNexus"),
                slot: strings.intern("s1"),
                cpm: 0.21,
                size: strings.intern("300x250"),
                late: false,
                latency_ms: Some(230.0),
                source: BidSource::ClientVisible,
            }],
            partner_latencies: vec![],
            slots: vec![],
            event_counts: vec![],
            page_load_ms: Some(1400.0),
            bids_dropped: 0,
            retries: 0,
            timed_out_partners: 0,
            passback_served: false,
        }
    }

    #[test]
    fn aggregates() {
        let mut strings = Interner::new();
        let ds = CrawlDataset {
            visits: vec![
                mk_visit(&mut strings, "a.example", 1, true),
                mk_visit(&mut strings, "b.example", 2, false),
                mk_visit(&mut strings, "a.example", 1, true),
            ],
            truths: vec![],
            n_sites: 10,
            n_days: 1,
            strings: Arc::new(strings),
        };
        assert_eq!(ds.hb_visits().count(), 2);
        assert_eq!(ds.hb_domains(), vec!["a.example"]);
        assert_eq!(ds.total_auctions(), 6);
        assert_eq!(ds.total_bids(), 2);
        assert_eq!(ds.distinct_partners(), vec!["AppNexus"]);
    }

    #[test]
    fn csv_roundtrip_truths() {
        let ds = CrawlDataset {
            visits: vec![],
            truths: vec![
                TruthRecord {
                    rank: 5,
                    day: 2,
                    facet: "hybrid".into(),
                    slots: 4,
                    client_bids: 3,
                    late_bids: 1,
                    hb_latency_ms: Some(612.5),
                    waterfall_latency_ms: None,
                    hb_wins: 2,
                    revenue_cpm: 0.61,
                    bids_dropped: 2,
                    retries: 1,
                    timed_out_partners: 1,
                    passback_served: true,
                },
                TruthRecord {
                    rank: 9,
                    day: 0,
                    facet: "none".into(),
                    slots: 1,
                    client_bids: 0,
                    late_bids: 0,
                    hb_latency_ms: None,
                    waterfall_latency_ms: Some(210.0),
                    hb_wins: 0,
                    revenue_cpm: 0.02,
                    ..TruthRecord::default()
                },
            ],
            n_sites: 10,
            n_days: 3,
            strings: Arc::new(Interner::new()),
        };
        let csv = ds.truths_csv();
        let back = CrawlDataset::load_truths(&csv);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].rank, 5);
        assert_eq!(back[0].facet, "hybrid");
        assert_eq!(back[0].hb_latency_ms, Some(612.5));
        assert_eq!(back[1].waterfall_latency_ms, Some(210.0));
        assert_eq!(back[1].hb_latency_ms, None);
        assert_eq!(back[0].bids_dropped, 2);
        assert_eq!(back[0].retries, 1);
        assert_eq!(back[0].timed_out_partners, 1);
        assert!(back[0].passback_served);
        assert!(!back[1].passback_served);
    }

    #[test]
    fn load_truths_accepts_pre_fault_dumps() {
        // A truth.csv written before the fault columns existed (10 columns)
        // still loads, with the fault counters defaulting to zero.
        let old = "rank,day,facet,slots,client_bids,late_bids,hb_latency_ms,waterfall_latency_ms,hb_wins,revenue_cpm\n\
                   5,2,hybrid,4,3,1,612.500,,2,0.610000\n";
        let back = CrawlDataset::load_truths(old);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].rank, 5);
        assert_eq!(back[0].bids_dropped, 0);
        assert_eq!(back[0].retries, 0);
        assert_eq!(back[0].timed_out_partners, 0);
        assert!(!back[0].passback_served);
    }

    #[test]
    fn visit_csv_has_header_and_rows() {
        let mut strings = Interner::new();
        let ds = CrawlDataset {
            visits: vec![mk_visit(&mut strings, "a.example", 1, true)],
            truths: vec![],
            n_sites: 1,
            n_days: 1,
            strings: Arc::new(strings),
        };
        let csv = ds.visits_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("domain,rank,day"));
        assert!(lines[1].contains("client-side"));
        let bids = ds.bids_csv();
        assert!(bids.contains("appnexus"));
    }
}
