//! # hb-crawler
//!
//! The crawl harness: clean-slate per-site sessions with the detector
//! attached ([`session`]), sharded streaming multi-day campaigns over the
//! lazy ecosystem ([`campaign`]), per-shard columnar chunks ([`chunk`]),
//! dataset assembly with CSV persistence ([`dataset`]), and the historical
//! Wayback adoption crawl ([`wayback_crawl`]).
//!
//! Methodology mirrors the paper's §3.2: stateless browser instances, a
//! 60 s page timeout, a 5 s settle window, a day-0 sweep over the full
//! toplist followed by daily revisits of detected HB sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod chunk;
pub mod dataset;
pub mod session;
pub mod wayback_crawl;

pub use campaign::{
    crawl_block_into, crawl_block_until, crawl_shard, crawl_shard_streamed, merge_chunks,
    run_campaign,
    run_campaign_streamed, run_factory_campaign, CampaignConfig, CampaignProgress, ProgressFn,
    ShardSpec,
};
pub use chunk::VisitChunk;
pub use dataset::{CrawlDataset, TruthRecord};
pub mod ring;

pub use session::{
    crawl_site, crawl_site_into, crawl_site_pooled, SessionConfig, SiteVisit, VisitOutcome,
    VisitScratch,
};
pub use wayback_crawl::{adoption_study, overlap_study, AdoptionPoint, OverlapPoint};
