//! Bounded slot ring for chunk hand-off between crawl workers and the
//! streaming consumer.
//!
//! The multi-worker batch used to relay sealed [`VisitChunk`]s through an
//! unbounded `mpsc` channel and reorder them on the consumer side with a
//! `BTreeMap` window: every send allocated a channel node, the receiver
//! parked and woke per message, and a slow consumer let chunks pile up
//! without bound. The ring replaces all three properties at once:
//!
//! * **No per-message allocation** — the ring's slots are allocated once
//!   per batch; hand-off moves the payload through a pre-existing slot.
//! * **Ordered by construction** — block `b` travels through slot
//!   `b % capacity`, and the consumer takes blocks in ascending order, so
//!   the deterministic `(day, shard, seq)` stream needs no reorder window.
//! * **Bounded** — a producer that runs `capacity` blocks ahead of the
//!   consumer waits (spin-then-yield), so at most `capacity` sealed
//!   chunks are in flight.
//!
//! Slot protocol (Vyukov-style sequence stamps, but with a `Mutex` around
//! the payload so the crate stays free of `unsafe`): slot `s` carries a
//! stamp; `stamp == b` means "free for the producer of block `b`",
//! `stamp == b + 1` means "holds block `b`". The consumer of block `b`
//! waits for `b + 1`, takes the payload, and re-arms the slot with
//! `b + capacity`. The mutex is never contended: the stamp hand-off
//! serializes producer and consumer access to the slot.
//!
//! [`VisitChunk`]: crate::chunk::VisitChunk

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One slot of the ring.
struct RingSlot<T> {
    /// Sequence stamp (see module docs for the encoding).
    stamp: AtomicUsize,
    /// Payload in transit, present only between publish and consume.
    payload: Mutex<Option<T>>,
}

/// A bounded multi-producer / single-consumer ring carrying numbered
/// blocks in ascending order.
pub struct SlotRing<T> {
    slots: Vec<RingSlot<T>>,
    /// Producers still running; lets the consumer detect a died-before-
    /// publish producer instead of spinning forever.
    producers_alive: AtomicUsize,
    /// Abort flag: set when a producer unwinds mid-batch or the consumer
    /// stops early (sink panic, missing block). Every wait loop gives up
    /// on it, so one failing side releases the other instead of
    /// deadlocking — the surrounding `thread::scope` then propagates the
    /// original panic.
    aborted: AtomicBool,
}

/// Wait with escalating backoff: spin briefly (the common case is "the
/// stamp is already right"), yield for a while, then sleep in short
/// slices. Chunk production takes milliseconds, so a waiter that reaches
/// the sleep phase adds at most ~100 µs of hand-off latency per block
/// while no longer burning a core for the whole wait — the parked `mpsc`
/// receiver this replaced didn't, and neither should the ring.
fn wait_for(stamp: &AtomicUsize, want: usize, mut give_up: impl FnMut() -> bool) -> bool {
    let mut spins = 0u32;
    loop {
        if stamp.load(Ordering::Acquire) == want {
            return true;
        }
        if give_up() {
            return false;
        }
        spins = spins.saturating_add(1);
        if spins < 64 {
            std::hint::spin_loop();
        } else if spins < 256 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }
}

impl<T> SlotRing<T> {
    /// Ring with room for `capacity` in-flight blocks, fed by `producers`
    /// workers. `capacity` should be at least `producers` so every worker
    /// can have a block in flight; the campaign uses `2 * producers` for
    /// slack.
    pub fn new(capacity: usize, producers: usize) -> SlotRing<T> {
        let capacity = capacity.max(1);
        SlotRing {
            slots: (0..capacity)
                .map(|s| RingSlot {
                    stamp: AtomicUsize::new(s),
                    payload: Mutex::new(None),
                })
                .collect(),
            producers_alive: AtomicUsize::new(producers),
            aborted: AtomicBool::new(false),
        }
    }

    /// Has either side abandoned the batch?
    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Publish block `b`. Blocks (spin/yield) while the slot still holds
    /// an unconsumed earlier block. Returns `false` — dropping `value` —
    /// when the batch was aborted (a sibling producer unwound, or the
    /// consumer stopped early); the producer should stop claiming blocks.
    #[must_use]
    pub fn publish(&self, b: usize, value: T) -> bool {
        let slot = &self.slots[b % self.slots.len()];
        // Give up only on abort: in a healthy batch the consumer always
        // drains every published block below `b`, so the slot frees up.
        if !wait_for(&slot.stamp, b, || self.is_aborted()) {
            return false;
        }
        *slot.payload.lock().expect("ring slot poisoned") = Some(value);
        slot.stamp.store(b + 1, Ordering::Release);
        true
    }

    /// Take block `b`, waiting for its producer. Returns `None` when the
    /// batch aborted or every producer exited without publishing it (a
    /// worker panicked — the caller's thread scope will propagate the
    /// panic).
    pub fn consume(&self, b: usize) -> Option<T> {
        let slot = &self.slots[b % self.slots.len()];
        let gone = || self.is_aborted() || self.producers_alive.load(Ordering::Acquire) == 0;
        if !wait_for(&slot.stamp, b + 1, gone) {
            // Producers are gone; the block may still have been published
            // just before the last producer exited.
            if slot.stamp.load(Ordering::Acquire) != b + 1 {
                return None;
            }
        }
        let value = slot
            .payload
            .lock()
            .expect("ring slot poisoned")
            .take()
            .expect("stamped slot holds a payload");
        slot.stamp.store(b + self.slots.len(), Ordering::Release);
        Some(value)
    }

    /// Abandon the batch: wake every waiter on both sides. Idempotent.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// A producer is done (normal exit or unwind). Call exactly once per
    /// producer; [`ProducerGuard`] automates it and flags an abort when
    /// the producer is unwinding from a panic.
    pub fn producer_done(&self) {
        self.producers_alive.fetch_sub(1, Ordering::AcqRel);
    }

    /// RAII guard marking a producer finished on drop (panic included).
    pub fn producer_guard(&self) -> ProducerGuard<'_, T> {
        ProducerGuard { ring: self }
    }

    /// RAII guard for the consumer: aborts the batch on drop, so a
    /// panicking sink (or any early consumer exit) releases producers
    /// blocked in [`SlotRing::publish`]. On a fully drained batch the
    /// abort is a harmless no-op — every producer has already exited.
    pub fn consumer_guard(&self) -> ConsumerGuard<'_, T> {
        ConsumerGuard { ring: self }
    }
}

/// Decrements the ring's live-producer count on drop; a panicking
/// producer additionally aborts the batch so the consumer (stuck waiting
/// for the block this producer claimed but will never publish) and any
/// sibling producers blocked on ring capacity are released.
pub struct ProducerGuard<'a, T> {
    ring: &'a SlotRing<T>,
}

impl<T> Drop for ProducerGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ring.abort();
        }
        self.ring.producer_done();
    }
}

/// Aborts the batch when the consumer stops (see
/// [`SlotRing::consumer_guard`]).
pub struct ConsumerGuard<'a, T> {
    ring: &'a SlotRing<T>,
}

impl<T> Drop for ConsumerGuard<'_, T> {
    fn drop(&mut self) {
        self.ring.abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_producer_round_trips_in_order() {
        let ring: SlotRing<usize> = SlotRing::new(2, 1);
        let guard = ring.producer_guard();
        // Interleave publish/consume so the bounded capacity never blocks.
        for b in 0..10 {
            assert!(ring.publish(b, b * 7));
            assert_eq!(ring.consume(b), Some(b * 7));
        }
        drop(guard);
    }

    #[test]
    fn multi_producer_claims_arrive_in_block_order() {
        let n_blocks = 200usize;
        let workers = 4;
        let ring: SlotRing<usize> = SlotRing::new(workers * 2, workers);
        let next = AtomicUsize::new(0);
        let mut seen = Vec::with_capacity(n_blocks);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let ring = &ring;
                let next = &next;
                scope.spawn(move || {
                    let _guard = ring.producer_guard();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        if !ring.publish(b, b) {
                            break;
                        }
                    }
                });
            }
            let _consumer = ring.consumer_guard();
            for b in 0..n_blocks {
                seen.push(ring.consume(b).expect("all producers healthy"));
            }
        });
        let want: Vec<usize> = (0..n_blocks).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn dead_producers_release_the_consumer() {
        let ring: SlotRing<usize> = SlotRing::new(4, 1);
        let guard = ring.producer_guard();
        assert!(ring.publish(0, 42));
        drop(guard); // producer exits before block 1
        assert_eq!(ring.consume(0), Some(42), "published block still drains");
        assert_eq!(ring.consume(1), None, "missing block reported, no hang");
    }

    #[test]
    fn panicking_producer_releases_everyone_with_siblings_alive() {
        // The regression shape: worker A claims a block and dies; worker B
        // races ahead until ring capacity and must not deadlock; the
        // consumer must stop (returning None) so the scope can propagate
        // A's panic — even though B is still alive when A unwinds.
        let n_blocks = 100usize;
        let ring: SlotRing<usize> = SlotRing::new(4, 2);
        let next = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let ring = &ring;
                let next = &next;
                // Worker A: claims its first block and panics.
                scope.spawn(move || {
                    let _guard = ring.producer_guard();
                    let _b = next.fetch_add(1, Ordering::Relaxed);
                    panic!("worker A dies");
                });
                // Worker B: healthy, runs the rest.
                scope.spawn(move || {
                    let _guard = ring.producer_guard();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        if !ring.publish(b, b) {
                            break;
                        }
                    }
                });
                let _consumer = ring.consumer_guard();
                let mut drained = 0;
                for b in 0..n_blocks {
                    match ring.consume(b) {
                        Some(_) => drained += 1,
                        None => break,
                    }
                }
                // A's claimed block was never published, so the consumer
                // cannot have drained everything.
                assert!(drained < n_blocks);
            });
        }));
        assert!(result.is_err(), "worker A's panic must propagate");
    }

    #[test]
    fn dying_consumer_releases_blocked_producers() {
        // A panicking sink drops the consumer guard; producers blocked on
        // ring capacity must bail out of publish instead of spinning.
        let ring: SlotRing<usize> = SlotRing::new(2, 1);
        std::thread::scope(|scope| {
            let ring = &ring;
            scope.spawn(move || {
                let _guard = ring.producer_guard();
                for b in 0..50 {
                    if !ring.publish(b, b) {
                        return;
                    }
                }
                panic!("producer should have been released by the abort");
            });
            let consumer = ring.consumer_guard();
            assert_eq!(ring.consume(0), Some(0));
            // "Sink panic": the consumer stops without draining the rest.
            drop(consumer);
        });
    }
}
