//! Multi-day crawl campaigns over the ecosystem — sharded and streaming.
//!
//! The paper's methodology, mechanized: a day-0 sweep over the full
//! toplist (detecting which sites run HB at all), followed by daily
//! revisits of the detected HB sites for `crawl_days` days.
//!
//! ## Architecture
//!
//! The toplist is split into `shards` contiguous rank slices. Each shard
//! crawls its slice with a pool of workers that claim fixed-size *blocks*
//! of ranks: a worker derives each site lazily from the
//! [`SiteFactory`], crawls it, flattens the ground truth immediately, and
//! interns strings into a block-local interner — sealing the block as a
//! self-contained columnar [`VisitChunk`] keyed `(day, shard, seq)`.
//! Chunks stream to the caller in deterministic key order the moment they
//! are sealed (a small reorder window smooths over scheduling).
//!
//! Determinism: every `(site, day)` visit derives its own RNG stream from
//! the master seed, block boundaries are a pure function of the job list,
//! and the merge re-interns records in `(day, shard, seq, rank)` order —
//! which, because shard slices are contiguous, is exactly the global
//! `(day, rank)` order. Symbol numbering and figure bytes are therefore
//! identical for every `parallelism` *and* every `shards` setting.

use crate::chunk::VisitChunk;
use crate::dataset::CrawlDataset;
use crate::ring::SlotRing;
use crate::session::{crawl_site_into, SessionConfig, VisitScratch};
use hb_core::{Interner, VisitColumns};
use hb_ecosystem::{Ecosystem, SiteFactory};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A progress observation delivered to [`CampaignConfig::progress`].
#[derive(Clone, Copy, Debug)]
pub struct CampaignProgress {
    /// Shard reporting progress.
    pub shard: u32,
    /// Day of the batch being crawled (0 = adoption sweep).
    pub day: u32,
    /// Visits finished in the current batch.
    pub done: usize,
    /// Total visits in the current batch.
    pub total: usize,
}

/// Progress callback: called from crawl worker threads, so it must be
/// `Send + Sync`. Library users decide what to do with it — nothing is
/// ever printed by the library itself.
pub type ProgressFn = Box<dyn Fn(CampaignProgress) + Send + Sync>;

/// Campaign tuning.
pub struct CampaignConfig {
    /// Worker threads per shard batch (0 = available parallelism).
    pub parallelism: usize,
    /// Session policy.
    pub session: SessionConfig,
    /// Number of contiguous toplist shards (1 = unsharded).
    pub shards: u32,
    /// Crawl only this shard (multi-machine operation); `None` runs every
    /// shard locally, interleaved day-major so chunks stream in merge
    /// order.
    pub shard_id: Option<u32>,
    /// Visits per sealed chunk (block size of the worker scheduler).
    pub chunk_visits: usize,
    /// Progress callback interval in visits; 0 disables progress entirely.
    pub progress_every: usize,
    /// Progress callback (replaces the stderr printing of earlier
    /// versions; `None` = silent).
    pub progress: Option<ProgressFn>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            parallelism: 0,
            session: SessionConfig::default(),
            shards: 1,
            shard_id: None,
            chunk_visits: 256,
            progress_every: 0,
            progress: None,
        }
    }
}

impl fmt::Debug for CampaignConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignConfig")
            .field("parallelism", &self.parallelism)
            .field("session", &self.session)
            .field("shards", &self.shards)
            .field("shard_id", &self.shard_id)
            .field("chunk_visits", &self.chunk_visits)
            .field("progress_every", &self.progress_every)
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .finish()
    }
}

/// One shard of a campaign: which contiguous slice of the toplist it owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Total shard count.
    pub shards: u32,
    /// This shard's index (`0..shards`).
    pub shard_id: u32,
}

impl ShardSpec {
    /// Build a spec; panics when `shard_id >= shards` or `shards == 0`.
    pub fn new(shards: u32, shard_id: u32) -> ShardSpec {
        assert!(shards > 0, "shards must be positive");
        assert!(shard_id < shards, "shard_id {shard_id} out of range 0..{shards}");
        ShardSpec { shards, shard_id }
    }

    /// The contiguous half-open range of 1-based ranks this shard crawls.
    /// Slices are contiguous so that `(day, shard, rank)` order equals the
    /// global `(day, rank)` order — the merge invariant.
    pub fn rank_range(&self, n_sites: u32) -> std::ops::Range<u32> {
        let base = n_sites / self.shards;
        let rem = n_sites % self.shards;
        let lo = 1 + self.shard_id * base + self.shard_id.min(rem);
        let len = base + u32::from(self.shard_id < rem);
        lo..lo + len
    }
}

/// Crawl one block of ranks into a sealed, self-contained chunk — the
/// unit of lease-based distribution.
///
/// This is the exact iteration the in-process scheduler runs per claimed
/// block ([`run_batch`] delegates here), exposed so a remote worker
/// holding a `(day, shard, seq)` lease produces byte-identical chunks: a
/// block-local interner, direct-to-column visits via [`crawl_site_into`],
/// ground truth flattened in place. `on_visit` fires after every finished
/// visit with the count of visits completed in this block (progress
/// callbacks, lease heartbeats).
#[allow(clippy::too_many_arguments)] // mirrors crawl_site_into's shape
pub fn crawl_block_into(
    factory: &SiteFactory,
    ranks: &[u32],
    day: u32,
    shard: u32,
    seq: u32,
    session: &SessionConfig,
    scratch: &mut VisitScratch,
    net: &hb_adtech::Net,
    on_visit: &mut dyn FnMut(usize),
) -> VisitChunk {
    crawl_block_until(
        factory,
        ranks,
        day,
        shard,
        seq,
        session,
        scratch,
        net,
        &mut |i| {
            on_visit(i);
            true
        },
    )
    .expect("an always-true keep_going never abandons the block")
}

/// [`crawl_block_into`], but abortable: `keep_going` fires after every
/// finished visit (with the count of visits completed in this block) and
/// returns whether to continue. Returning `false` abandons the block —
/// `None` comes back and no partial chunk exists anywhere. A distributed
/// worker whose lease expired, or whose coordinator stopped answering
/// heartbeats, uses this to stop burning CPU on a block that will be
/// re-crawled elsewhere (visits are pure in `(seed, rank, day)`, so the
/// abandoned work is perfectly reproducible).
#[allow(clippy::too_many_arguments)] // mirrors crawl_site_into's shape
pub fn crawl_block_until(
    factory: &SiteFactory,
    ranks: &[u32],
    day: u32,
    shard: u32,
    seq: u32,
    session: &SessionConfig,
    scratch: &mut VisitScratch,
    net: &hb_adtech::Net,
    keep_going: &mut dyn FnMut(usize) -> bool,
) -> Option<VisitChunk> {
    let mut strings = Interner::new();
    let mut visits = VisitColumns::with_capacity(ranks.len());
    let mut truths = Vec::with_capacity(ranks.len());
    for (i, &rank) in ranks.iter().enumerate() {
        // Direct-to-column: the detector appends the finished row
        // straight into the chunk's columns and the ground truth is
        // flattened in place — no owned SiteVisit per visit.
        let _ = crawl_site_into(
            net.clone(),
            factory.runtime_shared(rank),
            factory.visit_rng(rank, day),
            day,
            session,
            &mut strings,
            scratch,
            &mut visits,
            &mut truths,
        );
        if !keep_going(i + 1) {
            return None;
        }
    }
    Some(VisitChunk {
        day,
        shard,
        seq,
        visits,
        truths,
        strings,
    })
}

fn worker_count(cfg: &CampaignConfig) -> usize {
    if cfg.parallelism == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.parallelism
    }
}

/// Crawl one `(day, rank-set)` batch, streaming sealed chunks to `sink`
/// in `seq` order.
///
/// Workers claim fixed-size blocks of the rank list via an atomic cursor;
/// each block is crawled in rank order into its own columnar chunk with a
/// block-local interner, so no symbol state is shared between threads.
/// Ground truth is flattened to [`TruthRecord`]s as visits finish — the
/// heavyweight simulation state never outlives the visit.
fn run_batch(
    factory: &SiteFactory,
    ranks: &[u32],
    day: u32,
    shard_id: u32,
    cfg: &CampaignConfig,
    sink: &mut dyn FnMut(VisitChunk),
) {
    if ranks.is_empty() {
        return;
    }
    let workers = worker_count(cfg);
    let chunk_size = cfg.chunk_visits.max(1);
    let n_blocks = ranks.len().div_ceil(chunk_size);
    let total = ranks.len();
    let done = AtomicUsize::new(0);

    // One worker's block body: crawl block `b` into a sealed chunk via
    // the shared lease-block iteration.
    let crawl_block = |b: usize, scratch: &mut VisitScratch, net: &hb_adtech::Net| {
        let lo = b * chunk_size;
        let hi = (lo + chunk_size).min(total);
        crawl_block_into(
            factory,
            &ranks[lo..hi],
            day,
            shard_id,
            b as u32,
            &cfg.session,
            scratch,
            net,
            &mut |_| {
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if cfg.progress_every > 0 && n % cfg.progress_every == 0 {
                    if let Some(cb) = &cfg.progress {
                        cb(CampaignProgress {
                            shard: shard_id,
                            day,
                            done: n,
                            total,
                        });
                    }
                }
            },
        )
    };

    if workers.min(n_blocks) == 1 {
        // Single-worker batch (one core, or one block): run inline on the
        // calling thread. No scope, no spawn, no channel hand-off — on a
        // single-core box the cross-thread chunk relay alone costs more
        // than a sealed chunk is worth. Blocks run in `seq` order by
        // construction, so the sink sees the identical chunk stream.
        let net = factory.net_for_day(day);
        let mut scratch = VisitScratch::new(factory.partner_list());
        for b in 0..n_blocks {
            sink(crawl_block(b, &mut scratch, &net));
        }
        return;
    }

    // Multi-worker batch: chunks hand off through a bounded slot ring —
    // block `b` travels through slot `b % capacity`, so the consumer
    // drains in `seq` order with no reorder window, nothing allocates per
    // hand-off, and at most `capacity` sealed chunks are ever in flight
    // (the mpsc relay was unbounded and allocated a node per chunk).
    let producers = workers.min(n_blocks);
    let ring: SlotRing<VisitChunk> = SlotRing::new(producers * 2, producers);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let next = &next;
        let ring = &ring;
        let crawl_block = &crawl_block;
        for _ in 0..producers {
            scope.spawn(move || {
                // Mark this producer finished on any exit — and abort the
                // batch on panic — so neither the consumer nor a sibling
                // blocked on ring capacity ever waits on a dead worker.
                let _guard = ring.producer_guard();
                let net = factory.net_for_day(day);
                // Per-worker scratch: pooled simulation, browser, detector
                // buffers and message pools live for the whole batch, not
                // one visit.
                let mut scratch = VisitScratch::new(factory.partner_list());
                loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= n_blocks {
                        break;
                    }
                    if !ring.publish(b, crawl_block(b, &mut scratch, &net)) {
                        break; // batch aborted
                    }
                }
            });
        }
        // The guard aborts the batch when the consumer stops for any
        // reason (sink panic included), releasing producers blocked on
        // ring capacity; after a fully drained batch it is a no-op.
        let _consumer = ring.consumer_guard();
        for b in 0..n_blocks {
            match ring.consume(b) {
                Some(chunk) => sink(chunk),
                // The batch aborted (a producer died before publishing
                // `b`); stop consuming — the scope join below propagates
                // its panic.
                None => break,
            }
        }
    });
}

/// Crawl one shard end to end (day-0 sweep over its slice, then daily
/// revisits of its detected HB sites), streaming chunks in `(day, seq)`
/// order. The shard layout comes from `cfg.shards`, so the chunk keys
/// always agree with the configuration. This is the unit of multi-machine
/// distribution: ship the returned chunks anywhere and [`merge_chunks`]
/// reassembles the global dataset.
///
/// # Panics
/// Panics when `shard_id >= cfg.shards.max(1)`.
pub fn crawl_shard_streamed(
    factory: &SiteFactory,
    cfg: &CampaignConfig,
    shard_id: u32,
    sink: &mut dyn FnMut(VisitChunk),
) {
    let shard = ShardSpec::new(cfg.shards.max(1), shard_id);
    let config = factory.config();
    let ranks: Vec<u32> = shard.rank_range(config.n_sites).collect();
    let mut detected: Vec<u32> = Vec::new();
    run_batch(factory, &ranks, 0, shard.shard_id, cfg, &mut |chunk| {
        detected.extend(
            chunk
                .visits
                .iter()
                .filter(|v| v.hb_detected)
                .map(|v| v.rank),
        );
        sink(chunk);
    });
    for day in 1..=config.crawl_days {
        run_batch(factory, &detected, day, shard.shard_id, cfg, sink);
    }
}

/// [`crawl_shard_streamed`], collected.
pub fn crawl_shard(
    factory: &SiteFactory,
    cfg: &CampaignConfig,
    shard_id: u32,
) -> Vec<VisitChunk> {
    let mut chunks = Vec::new();
    crawl_shard_streamed(factory, cfg, shard_id, &mut |c| chunks.push(c));
    chunks
}

/// Run every shard locally, streaming chunks to `sink` in global merge
/// order (`(day, shard, seq)` — day-major across shards). Consumers like
/// the analysis layer's incremental index builder can fold chunks as they
/// arrive and drop them, so the full row dataset is never resident.
pub fn run_campaign_streamed(
    factory: &SiteFactory,
    cfg: &CampaignConfig,
    sink: &mut dyn FnMut(VisitChunk),
) {
    let shards = cfg.shards.max(1);
    let config = factory.config();
    let specs: Vec<ShardSpec> = (0..shards).map(|i| ShardSpec::new(shards, i)).collect();
    let mut detected: Vec<Vec<u32>> = vec![Vec::new(); shards as usize];
    // Day 0: the adoption sweep, shard by shard.
    for spec in &specs {
        let ranks: Vec<u32> = spec.rank_range(config.n_sites).collect();
        let det = &mut detected[spec.shard_id as usize];
        run_batch(factory, &ranks, 0, spec.shard_id, cfg, &mut |chunk| {
            det.extend(
                chunk
                    .visits
                    .iter()
                    .filter(|v| v.hb_detected)
                    .map(|v| v.rank),
            );
            sink(chunk);
        });
    }
    // Days 1..=crawl_days: daily revisits of each shard's detected sites.
    for day in 1..=config.crawl_days {
        for spec in &specs {
            run_batch(
                factory,
                &detected[spec.shard_id as usize],
                day,
                spec.shard_id,
                cfg,
                sink,
            );
        }
    }
}

/// Merge any collection of chunks into the row-oriented dataset.
///
/// Chunks are ordered by their `(day, shard, seq)` key and every record is
/// re-interned into the campaign-wide interner in that order — with
/// contiguous shard slices this is the global `(day, rank)` visit order,
/// so symbol numbering (not just resolved text) is identical for every
/// parallelism and shard-count setting.
pub fn merge_chunks(mut chunks: Vec<VisitChunk>, n_sites: u32, n_days: u32) -> CrawlDataset {
    chunks.sort_by_key(VisitChunk::key);
    let total: usize = chunks.iter().map(VisitChunk::len).sum();
    let mut strings = Interner::new();
    let mut visits = Vec::with_capacity(total);
    let mut truths = Vec::with_capacity(total);
    for chunk in chunks {
        let VisitChunk {
            visits: cols,
            truths: t,
            strings: local,
            ..
        } = chunk;
        for i in 0..cols.len() {
            let mut rec = cols.get(i).to_record();
            rec.remap_symbols(&mut |sym| strings.intern(local.resolve(sym)));
            visits.push(rec);
        }
        truths.extend(t);
    }
    CrawlDataset {
        visits,
        truths,
        n_sites,
        n_days,
        strings: Arc::new(strings),
    }
}

/// Run the full campaign over a lazy factory: day-0 sweep + daily HB-site
/// revisits, merged into a row dataset.
///
/// With `cfg.shard_id = Some(i)` only that shard's slice is crawled; the
/// result is a **partial** dataset still stamped with the *global*
/// `n_sites`/`n_days` (it describes the universe, not the visit count).
/// Partial datasets are meant to be shipped as chunks and combined with
/// the other shards via [`merge_chunks`] before figure generation —
/// universe-denominated figures (adoption rates, Table 1 site counts)
/// over a single shard's dataset will otherwise understate by roughly the
/// shard count.
pub fn run_factory_campaign(factory: &SiteFactory, cfg: &CampaignConfig) -> CrawlDataset {
    let config = factory.config();
    let mut chunks = Vec::new();
    match cfg.shard_id {
        Some(id) => crawl_shard_streamed(factory, cfg, id, &mut |c| chunks.push(c)),
        None => run_campaign_streamed(factory, cfg, &mut |c| chunks.push(c)),
    }
    merge_chunks(chunks, config.n_sites, config.crawl_days)
}

/// Run the full campaign: day-0 sweep + daily HB-site revisits.
pub fn run_campaign(eco: &Ecosystem, cfg: &CampaignConfig) -> CrawlDataset {
    run_factory_campaign(eco.factory(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ecosystem::EcosystemConfig;
    use std::collections::BTreeSet;

    fn tiny_campaign() -> CrawlDataset {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        run_campaign(&eco, &CampaignConfig::default())
    }

    #[test]
    fn campaign_covers_sweep_plus_daily() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        let hb_day0 = ds
            .visits
            .iter()
            .filter(|v| v.day == 0 && v.hb_detected)
            .count();
        assert_eq!(
            ds.visits.len(),
            eco.sites().len() + hb_day0 * eco.config.crawl_days as usize
        );
        assert_eq!(ds.truths.len(), ds.visits.len());
    }

    #[test]
    fn detector_matches_ground_truth_adoption() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        let truth_hb: BTreeSet<&str> = eco
            .hb_sites()
            .map(|s| s.domain.as_str())
            .collect();
        let detected: BTreeSet<&str> = ds
            .visits
            .iter()
            .filter(|v| v.day == 0 && v.hb_detected)
            .map(|v| ds.str(v.domain))
            .collect();
        // 100% precision (paper §4.1): nothing detected that is not HB.
        for d in &detected {
            assert!(truth_hb.contains(d), "{d} is a false positive");
        }
        // Near-100% recall in the simulated world (page loads can fail
        // under fault injection, so allow a small gap).
        let recall = detected.len() as f64 / truth_hb.len() as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn campaign_is_deterministic_across_parallelism() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let a = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism: 1,
                ..CampaignConfig::default()
            },
        );
        let b = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(a.visits.len(), b.visits.len());
        for (x, y) in a.visits.iter().zip(b.visits.iter()) {
            // Symbol *ids* match across parallelism settings (the merge
            // renumbers in deterministic order), not just resolved text.
            assert_eq!(x.domain, y.domain);
            assert_eq!(a.str(x.domain), b.str(y.domain));
            assert_eq!(x.day, y.day);
            assert_eq!(x.hb_latency_ms, y.hb_latency_ms);
            assert_eq!(x.bids.len(), y.bids.len());
        }
    }

    #[test]
    fn sharding_does_not_change_results() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let one = run_campaign(&eco, &CampaignConfig::default());
        let four = run_campaign(
            &eco,
            &CampaignConfig {
                shards: 4,
                chunk_visits: 17, // odd block size to stress the reorder
                ..CampaignConfig::default()
            },
        );
        assert_eq!(one.visits.len(), four.visits.len());
        for (x, y) in one.visits.iter().zip(four.visits.iter()) {
            assert_eq!(x.domain, y.domain, "visit order differs under sharding");
            assert_eq!(x.day, y.day);
            assert_eq!(x.hb_latency_ms, y.hb_latency_ms);
            assert_eq!(x.bids.len(), y.bids.len());
        }
        assert_eq!(one.strings.len(), four.strings.len());
        for ((sa, ta), (sb, tb)) in one.strings.iter().zip(four.strings.iter()) {
            assert_eq!(sa, sb);
            assert_eq!(ta, tb);
        }
        for (x, y) in one.truths.iter().zip(four.truths.iter()) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.day, y.day);
            assert_eq!(x.revenue_cpm, y.revenue_cpm);
        }
    }

    #[test]
    fn single_shard_crawl_matches_its_slice_of_the_campaign() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        // Crawl shard 1 of 4 in isolation (the multi-machine path)…
        let ds_shard = run_factory_campaign(
            eco.factory(),
            &CampaignConfig {
                shards: 4,
                shard_id: Some(1),
                ..CampaignConfig::default()
            },
        );
        // …and compare with the same slice of the full campaign.
        let full = run_campaign(&eco, &CampaignConfig::default());
        let range = ShardSpec::new(4, 1).rank_range(eco.config.n_sites);
        let expect: Vec<_> = full
            .visits
            .iter()
            .filter(|v| range.contains(&v.rank))
            .collect();
        assert_eq!(ds_shard.visits.len(), expect.len());
        for (got, want) in ds_shard.visits.iter().zip(expect) {
            assert_eq!(got.rank, want.rank);
            assert_eq!(got.day, want.day);
            assert_eq!(got.hb_latency_ms, want.hb_latency_ms);
            assert_eq!(got.bids.len(), want.bids.len());
        }
    }

    #[test]
    fn shard_slices_partition_the_toplist() {
        for (n, shards) in [(200u32, 4u32), (7u32, 3), (5, 8), (1, 1)] {
            let mut seen = Vec::new();
            for id in 0..shards {
                seen.extend(ShardSpec::new(shards, id).rank_range(n));
            }
            let want: Vec<u32> = (1..=n).collect();
            assert_eq!(seen, want, "n={n} shards={shards}");
        }
    }

    #[test]
    fn progress_callback_fires_off_stderr() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let cfg = CampaignConfig {
            progress_every: 10,
            progress: Some(Box::new(move |p: CampaignProgress| {
                assert!(p.done <= p.total);
                h.fetch_add(1, Ordering::Relaxed);
            })),
            ..CampaignConfig::default()
        };
        let _ = run_campaign(&eco, &cfg);
        assert!(hits.load(Ordering::Relaxed) > 0, "callback never fired");
    }

    #[test]
    fn panicking_progress_callback_aborts_not_hangs() {
        // A ProgressFn that panics does so on a crawl worker thread while
        // the batch's slot ring is live. The producer guard must abort the
        // batch (releasing the consumer and any sibling blocked on ring
        // capacity) and the panic must surface to the campaign caller —
        // the failure mode this pins down is a silently hung campaign.
        use std::sync::mpsc;
        use std::time::Duration;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
            let cfg = CampaignConfig {
                parallelism: 4,
                chunk_visits: 8, // many blocks so producers race ahead
                progress_every: 1,
                progress: Some(Box::new(|_| panic!("observer dies"))),
                ..CampaignConfig::default()
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_campaign(&eco, &cfg)
            }));
            let _ = tx.send(result.is_err());
        });
        let panicked = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("campaign hung on a panicking ProgressFn");
        assert!(panicked, "the ProgressFn panic must surface to the caller");
    }

    #[test]
    fn panicking_progress_callback_single_worker_surfaces() {
        // The single-worker batch path runs inline with no ring; the panic
        // must still propagate (and not poison later campaigns).
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let cfg = CampaignConfig {
            parallelism: 1,
            progress_every: 1,
            progress: Some(Box::new(|_| panic!("observer dies"))),
            ..CampaignConfig::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(&eco, &cfg)
        }));
        assert!(result.is_err());
        // The ecosystem is untouched by the failed campaign: a clean run
        // afterwards still works.
        let ds = run_campaign(&eco, &CampaignConfig::default());
        assert!(!ds.visits.is_empty());
    }

    #[test]
    fn dataset_statistics_plausible() {
        let ds = tiny_campaign();
        assert!(ds.total_auctions() > 0);
        assert!(ds.total_bids() > 0);
        assert!(!ds.distinct_partners().is_empty());
        // Bids per auction should be well below 1 for clean profiles.
        let ratio = ds.total_bids() as f64 / ds.total_auctions() as f64;
        assert!(ratio < 1.5, "bids/auction {ratio}");
    }
}
