//! Multi-day crawl campaigns over the ecosystem.
//!
//! The paper's methodology, mechanized: a day-0 sweep over the full
//! toplist (detecting which sites run HB at all), followed by daily
//! revisits of the detected HB sites for `crawl_days` days. Visits run in
//! parallel on a crossbeam work queue; determinism is preserved because
//! every `(site, day)` visit derives its own RNG stream from the master
//! seed, independent of scheduling order.

use crate::dataset::{CrawlDataset, TruthRecord};
use crate::session::{crawl_site, SessionConfig, SiteVisit};
use hb_ecosystem::Ecosystem;
use std::collections::BTreeSet;

/// Campaign tuning.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads (0 = available parallelism).
    pub parallelism: usize,
    /// Session policy.
    pub session: SessionConfig,
    /// Progress callback interval (visits); 0 disables progress output.
    pub progress_every: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            parallelism: 0,
            session: SessionConfig::default(),
            progress_every: 0,
        }
    }
}

/// One unit of crawl work.
#[derive(Clone, Copy, Debug)]
struct Job {
    site_idx: usize,
    day: u32,
}

/// Run a set of jobs in parallel, preserving determinism.
fn run_jobs(eco: &Ecosystem, jobs: &[Job], cfg: &CampaignConfig) -> Vec<SiteVisit> {
    let workers = if cfg.parallelism == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.parallelism
    };
    let (job_tx, job_rx) = crossbeam_channel::unbounded::<Job>();
    let (out_tx, out_rx) = crossbeam_channel::unbounded::<(usize, u32, SiteVisit)>();
    for job in jobs {
        job_tx.send(*job).unwrap();
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let out_tx = out_tx.clone();
            scope.spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let site = &eco.sites[job.site_idx];
                    let visit = crawl_site(
                        eco.net(),
                        eco.runtime_for(site),
                        eco.partner_list(),
                        eco.visit_rng(site.rank, job.day),
                        job.day,
                        &cfg.session,
                    );
                    let _ = out_tx.send((job.site_idx, job.day, visit));
                }
            });
        }
        drop(out_tx);
        let mut results: Vec<(usize, u32, SiteVisit)> = Vec::with_capacity(jobs.len());
        let mut done = 0usize;
        while let Ok(item) = out_rx.recv() {
            done += 1;
            if cfg.progress_every > 0 && done % cfg.progress_every == 0 {
                eprintln!("  crawled {done}/{} visits", jobs.len());
            }
            results.push(item);
        }
        // Deterministic output order regardless of thread interleaving.
        results.sort_by_key(|(idx, day, _)| (*day, *idx));
        results.into_iter().map(|(_, _, v)| v).collect()
    })
}

/// Run the full campaign: day-0 sweep + daily HB-site revisits.
pub fn run_campaign(eco: &Ecosystem, cfg: &CampaignConfig) -> CrawlDataset {
    // Day 0: the adoption sweep over the whole toplist.
    let sweep_jobs: Vec<Job> = (0..eco.sites.len())
        .map(|site_idx| Job { site_idx, day: 0 })
        .collect();
    let sweep = run_jobs(eco, &sweep_jobs, cfg);

    // The sites the *detector* flagged (not ground truth) are revisited.
    let hb_detected: BTreeSet<usize> = sweep
        .iter()
        .enumerate()
        .filter(|(_, v)| v.record.hb_detected)
        .map(|(i, _)| i)
        .collect();

    let mut visits = Vec::with_capacity(sweep.len() + hb_detected.len() * eco.config.crawl_days as usize);
    let mut truths = Vec::with_capacity(visits.capacity());
    for (i, v) in sweep.into_iter().enumerate() {
        truths.push(TruthRecord::from_truth(eco.sites[i].rank, 0, &v.truth));
        visits.push(v.record);
    }

    // Days 1..=crawl_days: daily revisits of detected HB sites.
    let mut daily_jobs = Vec::new();
    for day in 1..=eco.config.crawl_days {
        for &site_idx in &hb_detected {
            daily_jobs.push(Job { site_idx, day });
        }
    }
    let daily = run_jobs(eco, &daily_jobs, cfg);
    for (job, v) in daily_jobs.iter().zip(daily.into_iter()) {
        truths.push(TruthRecord::from_truth(
            eco.sites[job.site_idx].rank,
            job.day,
            &v.truth,
        ));
        visits.push(v.record);
    }

    CrawlDataset {
        visits,
        truths,
        n_sites: eco.config.n_sites,
        n_days: eco.config.crawl_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ecosystem::EcosystemConfig;

    fn tiny_campaign() -> CrawlDataset {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        run_campaign(&eco, &CampaignConfig::default())
    }

    #[test]
    fn campaign_covers_sweep_plus_daily() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        let hb_day0 = ds
            .visits
            .iter()
            .filter(|v| v.day == 0 && v.hb_detected)
            .count();
        assert_eq!(
            ds.visits.len(),
            eco.sites.len() + hb_day0 * eco.config.crawl_days as usize
        );
        assert_eq!(ds.truths.len(), ds.visits.len());
    }

    #[test]
    fn detector_matches_ground_truth_adoption() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        let truth_hb: BTreeSet<&str> = eco
            .hb_sites()
            .map(|s| s.domain.as_str())
            .collect();
        let detected: BTreeSet<&str> = ds
            .visits
            .iter()
            .filter(|v| v.day == 0 && v.hb_detected)
            .map(|v| v.domain.as_str())
            .collect();
        // 100% precision (paper §4.1): nothing detected that is not HB.
        for d in &detected {
            assert!(truth_hb.contains(d), "{d} is a false positive");
        }
        // Near-100% recall in the simulated world (page loads can fail
        // under fault injection, so allow a small gap).
        let recall = detected.len() as f64 / truth_hb.len() as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn campaign_is_deterministic_across_parallelism() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let a = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism: 1,
                ..CampaignConfig::default()
            },
        );
        let b = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(a.visits.len(), b.visits.len());
        for (x, y) in a.visits.iter().zip(b.visits.iter()) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.day, y.day);
            assert_eq!(x.hb_latency_ms, y.hb_latency_ms);
            assert_eq!(x.bids.len(), y.bids.len());
        }
    }

    #[test]
    fn dataset_statistics_plausible() {
        let ds = tiny_campaign();
        assert!(ds.total_auctions() > 0);
        assert!(ds.total_bids() > 0);
        assert!(!ds.distinct_partners().is_empty());
        // Bids per auction should be well below 1 for clean profiles.
        let ratio = ds.total_bids() as f64 / ds.total_auctions() as f64;
        assert!(ratio < 1.5, "bids/auction {ratio}");
    }
}
