//! Multi-day crawl campaigns over the ecosystem.
//!
//! The paper's methodology, mechanized: a day-0 sweep over the full
//! toplist (detecting which sites run HB at all), followed by daily
//! revisits of the detected HB sites for `crawl_days` days. Visits run in
//! parallel over a shared atomic work cursor; determinism is preserved
//! because every `(site, day)` visit derives its own RNG stream from the
//! master seed, independent of scheduling order, and the collect step
//! re-interns record strings in deterministic (day, site) order.

use crate::dataset::{CrawlDataset, TruthRecord};
use crate::session::{crawl_site, SessionConfig, SiteVisit};
use hb_core::Interner;
use hb_ecosystem::Ecosystem;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Campaign tuning.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads (0 = available parallelism).
    pub parallelism: usize,
    /// Session policy.
    pub session: SessionConfig,
    /// Progress callback interval (visits); 0 disables progress output.
    pub progress_every: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            parallelism: 0,
            session: SessionConfig::default(),
            progress_every: 0,
        }
    }
}

/// One unit of crawl work.
#[derive(Clone, Copy, Debug)]
struct Job {
    site_idx: usize,
    day: u32,
}

/// Run a set of jobs in parallel, preserving determinism.
///
/// Each worker interns record strings into a private [`Interner`]; the
/// collect step re-interns every record into the campaign-wide `strings`
/// in (day, site) order, so symbol numbering — not just resolved text —
/// is identical for every parallelism setting.
fn run_jobs(
    eco: &Ecosystem,
    jobs: &[Job],
    cfg: &CampaignConfig,
    strings: &mut Interner,
) -> Vec<SiteVisit> {
    let workers = if cfg.parallelism == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        cfg.parallelism
    };
    // Work-stealing via a shared atomic cursor over the job list; each
    // worker collects its own results, merged and re-ordered at the end.
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Interner::new();
                    let mut out: Vec<(usize, SiteVisit)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let job = jobs[i];
                        let site = &eco.sites[job.site_idx];
                        let visit = crawl_site(
                            eco.net(),
                            eco.runtime_for(site),
                            eco.partner_list(),
                            eco.visit_rng(site.rank, job.day),
                            job.day,
                            &cfg.session,
                            &mut local,
                        );
                        out.push((i, visit));
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if cfg.progress_every > 0 && n % cfg.progress_every == 0 {
                            eprintln!("  crawled {n}/{} visits", jobs.len());
                        }
                    }
                    (out, local)
                })
            })
            .collect();
        let mut locals: Vec<Interner> = Vec::with_capacity(workers);
        let mut results: Vec<(usize, usize, SiteVisit)> = Vec::with_capacity(jobs.len());
        for (widx, h) in handles.into_iter().enumerate() {
            let (out, local) = h.join().expect("crawl worker panicked");
            locals.push(local);
            results.extend(out.into_iter().map(|(i, v)| (i, widx, v)));
        }
        // Deterministic output order regardless of thread interleaving:
        // the job list is already sorted by (day, site_idx).
        results.sort_by_key(|(i, _, _)| *i);
        // Merge worker-local interners: re-intern every record's symbols
        // into the campaign interner in the deterministic order above.
        results
            .into_iter()
            .map(|(_, widx, mut visit)| {
                let local = &locals[widx];
                visit
                    .record
                    .remap_symbols(&mut |sym| strings.intern(local.resolve(sym)));
                visit
            })
            .collect()
    })
}

/// Run the full campaign: day-0 sweep + daily HB-site revisits.
pub fn run_campaign(eco: &Ecosystem, cfg: &CampaignConfig) -> CrawlDataset {
    let mut strings = Interner::new();
    // Day 0: the adoption sweep over the whole toplist.
    let sweep_jobs: Vec<Job> = (0..eco.sites.len())
        .map(|site_idx| Job { site_idx, day: 0 })
        .collect();
    let sweep = run_jobs(eco, &sweep_jobs, cfg, &mut strings);

    // The sites the *detector* flagged (not ground truth) are revisited.
    let hb_detected: BTreeSet<usize> = sweep
        .iter()
        .enumerate()
        .filter(|(_, v)| v.record.hb_detected)
        .map(|(i, _)| i)
        .collect();

    let mut visits = Vec::with_capacity(sweep.len() + hb_detected.len() * eco.config.crawl_days as usize);
    let mut truths = Vec::with_capacity(visits.capacity());
    for (i, v) in sweep.into_iter().enumerate() {
        truths.push(TruthRecord::from_truth(eco.sites[i].rank, 0, &v.truth));
        visits.push(v.record);
    }

    // Days 1..=crawl_days: daily revisits of detected HB sites.
    let mut daily_jobs = Vec::new();
    for day in 1..=eco.config.crawl_days {
        for &site_idx in &hb_detected {
            daily_jobs.push(Job { site_idx, day });
        }
    }
    let daily = run_jobs(eco, &daily_jobs, cfg, &mut strings);
    for (job, v) in daily_jobs.iter().zip(daily.into_iter()) {
        truths.push(TruthRecord::from_truth(
            eco.sites[job.site_idx].rank,
            job.day,
            &v.truth,
        ));
        visits.push(v.record);
    }

    CrawlDataset {
        visits,
        truths,
        n_sites: eco.config.n_sites,
        n_days: eco.config.crawl_days,
        strings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_ecosystem::EcosystemConfig;

    fn tiny_campaign() -> CrawlDataset {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        run_campaign(&eco, &CampaignConfig::default())
    }

    #[test]
    fn campaign_covers_sweep_plus_daily() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        let hb_day0 = ds
            .visits
            .iter()
            .filter(|v| v.day == 0 && v.hb_detected)
            .count();
        assert_eq!(
            ds.visits.len(),
            eco.sites.len() + hb_day0 * eco.config.crawl_days as usize
        );
        assert_eq!(ds.truths.len(), ds.visits.len());
    }

    #[test]
    fn detector_matches_ground_truth_adoption() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let ds = run_campaign(&eco, &CampaignConfig::default());
        let truth_hb: BTreeSet<&str> = eco
            .hb_sites()
            .map(|s| s.domain.as_str())
            .collect();
        let detected: BTreeSet<&str> = ds
            .visits
            .iter()
            .filter(|v| v.day == 0 && v.hb_detected)
            .map(|v| ds.str(v.domain))
            .collect();
        // 100% precision (paper §4.1): nothing detected that is not HB.
        for d in &detected {
            assert!(truth_hb.contains(d), "{d} is a false positive");
        }
        // Near-100% recall in the simulated world (page loads can fail
        // under fault injection, so allow a small gap).
        let recall = detected.len() as f64 / truth_hb.len() as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn campaign_is_deterministic_across_parallelism() {
        let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
        let a = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism: 1,
                ..CampaignConfig::default()
            },
        );
        let b = run_campaign(
            &eco,
            &CampaignConfig {
                parallelism: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(a.visits.len(), b.visits.len());
        for (x, y) in a.visits.iter().zip(b.visits.iter()) {
            // Symbol *ids* match across parallelism settings (the merge
            // renumbers in deterministic order), not just resolved text.
            assert_eq!(x.domain, y.domain);
            assert_eq!(a.str(x.domain), b.str(y.domain));
            assert_eq!(x.day, y.day);
            assert_eq!(x.hb_latency_ms, y.hb_latency_ms);
            assert_eq!(x.bids.len(), y.bids.len());
        }
    }

    #[test]
    fn dataset_statistics_plausible() {
        let ds = tiny_campaign();
        assert!(ds.total_auctions() > 0);
        assert!(ds.total_bids() > 0);
        assert!(!ds.distinct_partners().is_empty());
        // Bids per auction should be well below 1 for clean profiles.
        let ratio = ds.total_bids() as f64 / ds.total_auctions() as f64;
        assert!(ratio < 1.5, "bids/auction {ratio}");
    }
}
