//! The historical adoption crawl (Figure 4).
//!
//! For each year 2014–2019, build that year's top-1k list (churned from
//! the base list), generate the archived snapshots, and run the detector's
//! *static analysis* over them — exactly the paper's methodology for pages
//! that cannot be rendered live.

use hb_core::{analyze_html, LibrarySignatures};
use hb_ecosystem::{toplist::TopList, wayback, YEARLY_ADOPTION};
use hb_simnet::Rng;

/// One year's adoption measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct AdoptionPoint {
    /// Snapshot year.
    pub year: u32,
    /// Fraction of the year's top list statically flagged as HB.
    pub detected_rate: f64,
    /// Ground-truth adoption rate of the generated archive.
    pub true_rate: f64,
    /// Pages scanned.
    pub n_pages: usize,
}

/// Overlap of a churned yearly list with the purchased base list.
#[derive(Clone, Debug, PartialEq)]
pub struct OverlapPoint {
    /// Snapshot label.
    pub label: String,
    /// Measured overlap fraction.
    pub overlap: f64,
}

/// Run the six-year adoption study over `top_k` sites per year.
pub fn adoption_study(seed: u64, top_k: u32) -> Vec<AdoptionPoint> {
    let sigs = LibrarySignatures::default();
    let base = TopList::base(top_k);
    let mut rng = Rng::new(seed).derive_str("wayback");
    YEARLY_ADOPTION
        .iter()
        .map(|&(year, adoption)| {
            // Each year uses a churned variant of the top list (rank
            // churn across years).
            let churn = 1.0 - 0.06 * (2019 - year) as f64;
            let list = base.churned(&format!("{year}"), churn.clamp(0.5, 1.0), &mut rng);
            let snaps = wayback::yearly_archive(&list, year, adoption, &mut rng);
            let detected = snaps
                .iter()
                .filter(|s| analyze_html(&sigs, &s.html).hb_suspected)
                .count();
            let truly = snaps.iter().filter(|s| s.has_hb).count();
            AdoptionPoint {
                year,
                detected_rate: detected as f64 / snaps.len() as f64,
                true_rate: truly as f64 / snaps.len() as f64,
                n_pages: snaps.len(),
            }
        })
        .collect()
}

/// Reproduce the §3.2 toplist overlap measurements.
pub fn overlap_study(seed: u64, n: u32) -> Vec<OverlapPoint> {
    let base = TopList::base(n);
    let mut rng = Rng::new(seed).derive_str("overlaps");
    hb_ecosystem::YEARLY_OVERLAPS
        .iter()
        .map(|&(label, target)| {
            let snap = base.churned(label, target, &mut rng);
            OverlapPoint {
                label: label.to_string(),
                overlap: base.overlap_with(&snap),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adoption_series_has_fig4_shape() {
        let pts = adoption_study(42, 1_000);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].year, 2014);
        assert_eq!(pts[5].year, 2019);
        // ~10% early adopters, ~20% plateau after 2016.
        assert!(pts[0].detected_rate > 0.06 && pts[0].detected_rate < 0.14,
            "2014 rate {}", pts[0].detected_rate);
        assert!(pts[5].detected_rate > 0.17 && pts[5].detected_rate < 0.26,
            "2019 rate {}", pts[5].detected_rate);
        // Non-decreasing within tolerance.
        for w in pts.windows(2) {
            assert!(w[1].detected_rate >= w[0].detected_rate - 0.02);
        }
    }

    #[test]
    fn static_detection_tracks_truth_with_small_error() {
        let pts = adoption_study(7, 1_000);
        for p in &pts {
            let err = (p.detected_rate - p.true_rate).abs();
            assert!(err < 0.03, "{}: err {err}", p.year);
        }
    }

    #[test]
    fn overlap_study_matches_paper_numbers() {
        let pts = overlap_study(3, 5_000);
        assert_eq!(pts.len(), 4);
        let targets = [0.7836, 0.6210, 0.5836, 0.5534];
        for (p, t) in pts.iter().zip(targets) {
            assert!((p.overlap - t).abs() < 0.01, "{}: {} vs {t}", p.label, p.overlap);
        }
    }

    #[test]
    fn studies_are_deterministic() {
        assert_eq!(adoption_study(1, 300), adoption_study(1, 300));
        assert_eq!(overlap_study(1, 300), overlap_study(1, 300));
    }
}
