//! URL parsing and construction.
//!
//! A deliberately small URL type covering what ad-tech traffic needs:
//! scheme, host, optional port, path, and a query-string multimap with
//! percent-encoding. Implemented in-repo so the detector's parameter
//! extraction is fully auditable.

use std::collections::BTreeMap;
use std::fmt;

/// Error produced when parsing a URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UrlError {
    /// The scheme separator `://` was missing.
    MissingScheme,
    /// The host component was empty.
    EmptyHost,
    /// A port component failed to parse.
    BadPort(String),
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::MissingScheme => write!(f, "missing '://' scheme separator"),
            UrlError::EmptyHost => write!(f, "empty host"),
            UrlError::BadPort(p) => write!(f, "invalid port: {p:?}"),
        }
    }
}

impl std::error::Error for UrlError {}

/// An ordered multimap of query parameters.
///
/// Preserves insertion order for serialization (ad servers are sensitive to
/// `hb_*` key ordering in logs) while allowing repeated keys.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryParams {
    entries: Vec<(String, String)>,
}

impl QueryParams {
    /// Empty parameter list.
    pub fn new() -> Self {
        QueryParams::default()
    }

    /// Parse from a raw query string (no leading `?`).
    pub fn parse(raw: &str) -> Self {
        let mut q = QueryParams::new();
        if raw.is_empty() {
            return q;
        }
        for pair in raw.split('&') {
            if pair.is_empty() {
                continue;
            }
            match pair.split_once('=') {
                Some((k, v)) => q.append(percent_decode(k), percent_decode(v)),
                None => q.append(percent_decode(pair), String::new()),
            }
        }
        q
    }

    /// Append a key/value pair (repeated keys allowed).
    pub fn append(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.entries.push((key.into(), value.into()));
    }

    /// Set a key to a single value, removing previous occurrences.
    pub fn set(&mut self, key: &str, value: impl Into<String>) {
        self.entries.retain(|(k, _)| k != key);
        self.entries.push((key.to_string(), value.into()));
    }

    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `key`.
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Does `key` exist?
    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Iterate `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys that start with `prefix`, with their values, insertion-ordered.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Collect into a `BTreeMap`, keeping the **first** value per key.
    pub fn to_map(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        for (k, v) in self.iter() {
            m.entry(k.to_string()).or_insert_with(|| v.to_string());
        }
        m
    }

    /// Serialize (percent-encoded, insertion order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push('&');
            }
            out.push_str(&percent_encode(k));
            out.push('=');
            out.push_str(&percent_encode(v));
        }
        out
    }
}

/// Characters that survive percent-encoding untouched (RFC 3986 unreserved).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encode a string.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Percent-decode a string; invalid escapes are passed through literally.
/// `+` is decoded as a space (form encoding convention).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = &s[i + 1..i + 3];
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A parsed URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Url {
    /// Scheme, e.g. `https`.
    pub scheme: String,
    /// Hostname, lower-cased.
    pub host: String,
    /// Optional explicit port.
    pub port: Option<u16>,
    /// Path beginning with `/` (defaults to `/`).
    pub path: String,
    /// Query parameters.
    pub query: QueryParams,
}

impl Url {
    /// Parse a URL string.
    pub fn parse(raw: &str) -> Result<Url, UrlError> {
        let (scheme, rest) = raw.split_once("://").ok_or(UrlError::MissingScheme)?;
        let (authority, path_query) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
                let port = p.parse::<u16>().map_err(|_| UrlError::BadPort(p.into()))?;
                (h, Some(port))
            }
            _ => (authority, None),
        };
        if host.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), QueryParams::parse(q)),
            None => (path_query.to_string(), QueryParams::new()),
        };
        Ok(Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
        })
    }

    /// Build a URL programmatically.
    pub fn build(scheme: &str, host: &str, path: &str) -> Url {
        Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            port: None,
            path: if path.starts_with('/') {
                path.to_string()
            } else {
                format!("/{path}")
            },
            query: QueryParams::new(),
        }
    }

    /// `https://host/path` convenience constructor.
    pub fn https(host: &str, path: &str) -> Url {
        Url::build("https", host, path)
    }

    /// Add a query parameter (builder style).
    pub fn with_param(mut self, key: &str, value: impl Into<String>) -> Url {
        self.query.append(key, value);
        self
    }

    /// The registrable-ish domain: final two labels of the host
    /// (`sub.ads.example.com` → `example.com`). Approximation sufficient
    /// for partner matching in the simulated DNS namespace.
    pub fn base_domain(&self) -> &str {
        base_domain_of(&self.host)
    }

    /// Does this URL's host equal `domain` or end with `.domain`?
    pub fn host_matches(&self, domain: &str) -> bool {
        host_matches(&self.host, domain)
    }

    /// Serialize back to a string.
    pub fn to_string_full(&self) -> String {
        let mut out = format!("{}://{}", self.scheme, self.host);
        if let Some(p) = self.port {
            out.push_str(&format!(":{p}"));
        }
        out.push_str(&self.path);
        if !self.query.is_empty() {
            out.push('?');
            out.push_str(&self.query.encode());
        }
        out
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_full())
    }
}

/// The final two labels of a hostname (`a.b.c` → `b.c`).
pub fn base_domain_of(host: &str) -> &str {
    let mut dots = host.rmatch_indices('.');
    match (dots.next(), dots.next()) {
        (Some(_), Some((idx, _))) => &host[idx + 1..],
        _ => host,
    }
}

/// `host` equals `domain` or is a subdomain of it.
pub fn host_matches(host: &str, domain: &str) -> bool {
    host == domain || (host.len() > domain.len() && host.ends_with(domain) && host.as_bytes()[host.len() - domain.len() - 1] == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("https://Ads.Example.com:8443/bid/v1?hb_bidder=appnexus&hb_pb=0.50").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "ads.example.com");
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.path, "/bid/v1");
        assert_eq!(u.query.get("hb_bidder"), Some("appnexus"));
        assert_eq!(u.query.get("hb_pb"), Some("0.50"));
    }

    #[test]
    fn parse_without_path_defaults_root() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert!(u.query.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Url::parse("example.com/x"), Err(UrlError::MissingScheme));
        assert_eq!(Url::parse("https:///x"), Err(UrlError::EmptyHost));
        assert!(matches!(Url::parse("https://h:99999/"), Err(UrlError::BadPort(_))));
    }

    #[test]
    fn roundtrip_display() {
        let raw = "https://dsp.adnet.example/hb/bid?a=1&b=two%20words";
        let u = Url::parse(raw).unwrap();
        let again = Url::parse(&u.to_string_full()).unwrap();
        assert_eq!(u, again);
    }

    #[test]
    fn query_multimap_semantics() {
        let q = QueryParams::parse("k=1&k=2&other=x");
        assert_eq!(q.get("k"), Some("1"));
        let all: Vec<&str> = q.get_all("k").collect();
        assert_eq!(all, vec!["1", "2"]);
        assert_eq!(q.len(), 3);
        assert!(q.contains("other"));
        assert!(!q.contains("missing"));
    }

    #[test]
    fn query_set_replaces() {
        let mut q = QueryParams::parse("k=1&k=2");
        q.set("k", "9");
        let all: Vec<&str> = q.get_all("k").collect();
        assert_eq!(all, vec!["9"]);
    }

    #[test]
    fn prefix_scan_finds_hb_params() {
        let q = QueryParams::parse("hb_pb=0.5&hb_bidder=rubicon&cust=1");
        let hb: Vec<(&str, &str)> = q.with_prefix("hb_").collect();
        assert_eq!(hb, vec![("hb_pb", "0.5"), ("hb_bidder", "rubicon")]);
    }

    #[test]
    fn percent_coding_roundtrip() {
        let original = "a b&c=d/e?f";
        let enc = percent_encode(original);
        assert!(!enc.contains(' '));
        assert!(!enc.contains('&'));
        assert_eq!(percent_decode(&enc), original);
    }

    #[test]
    fn percent_decode_tolerates_garbage() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("a+b"), "a b");
    }

    #[test]
    fn base_domain_and_matching() {
        let u = Url::parse("https://fast.cdn.prebid.org/lib.js").unwrap();
        assert_eq!(u.base_domain(), "prebid.org");
        assert!(u.host_matches("prebid.org"));
        assert!(u.host_matches("cdn.prebid.org"));
        assert!(!u.host_matches("ebid.org"));
        assert!(!u.host_matches("other.org"));
        assert_eq!(base_domain_of("localhost"), "localhost");
    }

    #[test]
    fn with_param_builder() {
        let u = Url::https("ads.example.com", "/bid")
            .with_param("hb_size", "300x250")
            .with_param("cpm", "0.42");
        assert!(u.to_string_full().contains("hb_size=300x250"));
        assert!(u.to_string_full().contains("cpm=0.42"));
    }

    #[test]
    fn to_map_keeps_first() {
        let q = QueryParams::parse("k=1&k=2&a=9");
        let m = q.to_map();
        assert_eq!(m.get("k").map(String::as_str), Some("1"));
        assert_eq!(m.get("a").map(String::as_str), Some("9"));
    }
}
