//! URL parsing and construction.
//!
//! A deliberately small URL type covering what ad-tech traffic needs:
//! scheme, host, optional port, path, and a query-string multimap with
//! percent-encoding. Implemented in-repo so the detector's parameter
//! extraction is fully auditable.
//!
//! Hot-path notes: every component is an [`HStr`], so building a URL for a
//! bid request allocates nothing when the host, path and parameters are
//! short or static (the overwhelmingly common case). The query multimap's
//! entry storage can be loaned from a
//! [`MsgScratch`](crate::MsgScratch) pool and recycled between visits.

use crate::hstr::{lower_ascii, HStr};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced when parsing a URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UrlError {
    /// The scheme separator `://` was missing.
    MissingScheme,
    /// The host component was empty.
    EmptyHost,
    /// A port component failed to parse.
    BadPort(String),
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::MissingScheme => write!(f, "missing '://' scheme separator"),
            UrlError::EmptyHost => write!(f, "empty host"),
            UrlError::BadPort(p) => write!(f, "invalid port: {p:?}"),
        }
    }
}

impl std::error::Error for UrlError {}

/// An ordered multimap of query parameters.
///
/// Preserves insertion order for serialization (ad servers are sensitive to
/// `hb_*` key ordering in logs) while allowing repeated keys.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryParams {
    entries: Vec<(HStr, HStr)>,
}

impl QueryParams {
    /// Empty parameter list.
    pub fn new() -> Self {
        QueryParams::default()
    }

    /// Build over recycled entry storage (see
    /// [`MsgScratch`](crate::MsgScratch)); the vector is cleared.
    pub fn with_storage(mut storage: Vec<(HStr, HStr)>) -> Self {
        storage.clear();
        QueryParams { entries: storage }
    }

    /// Take the entry storage back for recycling.
    pub fn into_storage(self) -> Vec<(HStr, HStr)> {
        self.entries
    }

    /// Parse from a raw query string (no leading `?`).
    pub fn parse(raw: &str) -> Self {
        let mut q = QueryParams::new();
        if raw.is_empty() {
            return q;
        }
        for pair in raw.split('&') {
            if pair.is_empty() {
                continue;
            }
            match pair.split_once('=') {
                Some((k, v)) => q.append(percent_decode(k), percent_decode(v)),
                None => q.append(percent_decode(pair), HStr::EMPTY),
            }
        }
        q
    }

    /// Append a key/value pair (repeated keys allowed).
    pub fn append(&mut self, key: impl Into<HStr>, value: impl Into<HStr>) {
        self.entries.push((key.into(), value.into()));
    }

    /// Set a key to a single value, removing previous occurrences.
    pub fn set(&mut self, key: &str, value: impl Into<HStr>) {
        self.entries.retain(|(k, _)| k != key);
        self.entries.push((HStr::new(key), value.into()));
    }

    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `key`.
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Does `key` exist?
    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Iterate `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys that start with `prefix`, with their values, insertion-ordered.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Collect into a `BTreeMap`, keeping the **first** value per key.
    pub fn to_map(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        for (k, v) in self.iter() {
            m.entry(k.to_string()).or_insert_with(|| v.to_string());
        }
        m
    }

    /// Serialize (percent-encoded, insertion order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push('&');
            }
            percent_encode_into(k, &mut out);
            out.push('=');
            percent_encode_into(v, &mut out);
        }
        out
    }
}

/// Characters that survive percent-encoding untouched (RFC 3986 unreserved).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Uppercase hex digits, indexed by nibble.
const HEX_UPPER: &[u8; 16] = b"0123456789ABCDEF";

/// Percent-encode `s`, appending to `out` (no per-byte formatting
/// machinery: hex digits come from a lookup table).
pub fn percent_encode_into(s: &str, out: &mut String) {
    for &b in s.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX_UPPER[(b >> 4) as usize] as char);
            out.push(HEX_UPPER[(b & 0x0F) as usize] as char);
        }
    }
}

/// Percent-encode a string.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    percent_encode_into(s, &mut out);
    out
}

/// Percent-decode a string; invalid escapes are passed through literally.
/// `+` is decoded as a space (form encoding convention). Borrows the input
/// unchanged when it contains neither `%` nor `+` — the common case for
/// the simulator's already-clean query strings.
pub fn percent_decode(s: &str) -> Cow<'_, str> {
    let bytes = s.as_bytes();
    if !bytes.iter().any(|&b| b == b'%' || b == b'+') {
        return Cow::Borrowed(s);
    }
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = &s[i + 1..i + 3];
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Cow::Owned(String::from_utf8_lossy(&out).into_owned())
}

/// A parsed URL.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Url {
    /// Scheme, e.g. `https`.
    pub scheme: HStr,
    /// Hostname, lower-cased.
    pub host: HStr,
    /// Optional explicit port.
    pub port: Option<u16>,
    /// Path beginning with `/` (defaults to `/`).
    pub path: HStr,
    /// Query parameters.
    pub query: QueryParams,
}

impl Url {
    /// Parse a URL string.
    pub fn parse(raw: &str) -> Result<Url, UrlError> {
        let (scheme, rest) = raw.split_once("://").ok_or(UrlError::MissingScheme)?;
        let (authority, path_query) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
                let port = p.parse::<u16>().map_err(|_| UrlError::BadPort(p.into()))?;
                (h, Some(port))
            }
            _ => (authority, None),
        };
        if host.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (HStr::new(p), QueryParams::parse(q)),
            None => (HStr::new(path_query), QueryParams::new()),
        };
        Ok(Url {
            scheme: lower_ascii(scheme),
            host: lower_ascii(host),
            port,
            path,
            query,
        })
    }

    /// Build a URL programmatically.
    pub fn build(scheme: &str, host: &str, path: &str) -> Url {
        Url {
            scheme: lower_ascii(scheme),
            host: lower_ascii(host),
            port: None,
            path: if path.starts_with('/') {
                HStr::new(path)
            } else {
                HStr::from(format!("/{path}"))
            },
            query: QueryParams::new(),
        }
    }

    /// `https://host/path` convenience constructor. Short hosts and paths
    /// are stored inline; neither touches the heap in the common case.
    pub fn https(host: &str, path: &str) -> Url {
        Url {
            scheme: HStr::from_static("https"),
            host: lower_ascii(host),
            port: None,
            path: if path.starts_with('/') {
                HStr::new(path)
            } else {
                HStr::from(format!("/{path}"))
            },
            query: QueryParams::new(),
        }
    }

    /// [`Url::https`] with pre-built components and recycled query storage
    /// — the zero-allocation constructor the visit hot path uses. The
    /// lower-case-host invariant is preserved: an already-lowercase host
    /// (the only thing the hot path passes) moves through untouched.
    pub fn https_pooled(host: HStr, path: HStr, query: QueryParams) -> Url {
        let host = if host.bytes().any(|b| b.is_ascii_uppercase()) {
            HStr::from(host.to_ascii_lowercase())
        } else {
            host
        };
        Url {
            scheme: HStr::from_static("https"),
            host,
            port: None,
            path,
            query,
        }
    }

    /// Add a query parameter (builder style).
    pub fn with_param(mut self, key: impl Into<HStr>, value: impl Into<HStr>) -> Url {
        self.query.append(key, value);
        self
    }

    /// The registrable-ish domain: final two labels of the host
    /// (`sub.ads.example.com` → `example.com`). Approximation sufficient
    /// for partner matching in the simulated DNS namespace.
    pub fn base_domain(&self) -> &str {
        base_domain_of(&self.host)
    }

    /// Does this URL's host equal `domain` or end with `.domain`?
    pub fn host_matches(&self, domain: &str) -> bool {
        host_matches(&self.host, domain)
    }

    /// Serialize back to a string.
    pub fn to_string_full(&self) -> String {
        let mut out = format!("{}://{}", self.scheme, self.host);
        if let Some(p) = self.port {
            use fmt::Write as _;
            let _ = write!(out, ":{p}");
        }
        out.push_str(&self.path);
        if !self.query.is_empty() {
            out.push('?');
            out.push_str(&self.query.encode());
        }
        out
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_full())
    }
}

/// The final two labels of a hostname (`a.b.c` → `b.c`).
pub fn base_domain_of(host: &str) -> &str {
    let mut dots = host.rmatch_indices('.');
    match (dots.next(), dots.next()) {
        (Some(_), Some((idx, _))) => &host[idx + 1..],
        _ => host,
    }
}

/// `host` equals `domain` or is a subdomain of it.
pub fn host_matches(host: &str, domain: &str) -> bool {
    host == domain || (host.len() > domain.len() && host.ends_with(domain) && host.as_bytes()[host.len() - domain.len() - 1] == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("https://Ads.Example.com:8443/bid/v1?hb_bidder=appnexus&hb_pb=0.50").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "ads.example.com");
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.path, "/bid/v1");
        assert_eq!(u.query.get("hb_bidder"), Some("appnexus"));
        assert_eq!(u.query.get("hb_pb"), Some("0.50"));
    }

    #[test]
    fn parse_without_path_defaults_root() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert!(u.query.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Url::parse("example.com/x"), Err(UrlError::MissingScheme));
        assert_eq!(Url::parse("https:///x"), Err(UrlError::EmptyHost));
        assert!(matches!(Url::parse("https://h:99999/"), Err(UrlError::BadPort(_))));
    }

    #[test]
    fn roundtrip_display() {
        let raw = "https://dsp.adnet.example/hb/bid?a=1&b=two%20words";
        let u = Url::parse(raw).unwrap();
        let again = Url::parse(&u.to_string_full()).unwrap();
        assert_eq!(u, again);
    }

    #[test]
    fn query_multimap_semantics() {
        let q = QueryParams::parse("k=1&k=2&other=x");
        assert_eq!(q.get("k"), Some("1"));
        let all: Vec<&str> = q.get_all("k").collect();
        assert_eq!(all, vec!["1", "2"]);
        assert_eq!(q.len(), 3);
        assert!(q.contains("other"));
        assert!(!q.contains("missing"));
    }

    #[test]
    fn query_set_replaces() {
        let mut q = QueryParams::parse("k=1&k=2");
        q.set("k", "9");
        let all: Vec<&str> = q.get_all("k").collect();
        assert_eq!(all, vec!["9"]);
    }

    #[test]
    fn prefix_scan_finds_hb_params() {
        let q = QueryParams::parse("hb_pb=0.5&hb_bidder=rubicon&cust=1");
        let hb: Vec<(&str, &str)> = q.with_prefix("hb_").collect();
        assert_eq!(hb, vec![("hb_pb", "0.5"), ("hb_bidder", "rubicon")]);
    }

    #[test]
    fn percent_coding_roundtrip() {
        let original = "a b&c=d/e?f";
        let enc = percent_encode(original);
        assert!(!enc.contains(' '));
        assert!(!enc.contains('&'));
        assert_eq!(percent_decode(&enc), original);
    }

    #[test]
    fn percent_decode_tolerates_garbage() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("a+b"), "a b");
    }

    #[test]
    fn percent_decode_borrows_clean_input() {
        assert!(matches!(percent_decode("clean-input_1.2~x"), Cow::Borrowed(_)));
        assert!(matches!(percent_decode("has%20escape"), Cow::Owned(_)));
        assert!(matches!(percent_decode("plus+plus"), Cow::Owned(_)));
    }

    #[test]
    fn encode_hex_table_matches_format() {
        // Every byte the table encodes must render exactly like {:02X}.
        for b in 0u8..=255 {
            if is_unreserved(b) {
                continue;
            }
            let s = String::from_utf8_lossy(&[b]).into_owned();
            // Multi-byte lossy replacement still goes byte-by-byte through
            // the encoder; compare against the reference rendering.
            let enc = percent_encode(&s);
            for chunk in enc.split('%').skip(1) {
                assert_eq!(chunk.len(), 2);
                assert!(chunk.bytes().all(|c| c.is_ascii_hexdigit()));
                assert_eq!(chunk, chunk.to_ascii_uppercase());
            }
        }
        assert_eq!(percent_encode(" "), "%20");
        assert_eq!(percent_encode("/"), "%2F");
        assert_eq!(percent_encode("\u{7f}"), "%7F");
    }

    #[test]
    fn base_domain_and_matching() {
        let u = Url::parse("https://fast.cdn.prebid.org/lib.js").unwrap();
        assert_eq!(u.base_domain(), "prebid.org");
        assert!(u.host_matches("prebid.org"));
        assert!(u.host_matches("cdn.prebid.org"));
        assert!(!u.host_matches("ebid.org"));
        assert!(!u.host_matches("other.org"));
        assert_eq!(base_domain_of("localhost"), "localhost");
    }

    #[test]
    fn with_param_builder() {
        let u = Url::https("ads.example.com", "/bid")
            .with_param("hb_size", "300x250")
            .with_param("cpm", "0.42");
        assert!(u.to_string_full().contains("hb_size=300x250"));
        assert!(u.to_string_full().contains("cpm=0.42"));
    }

    #[test]
    fn to_map_keeps_first() {
        let q = QueryParams::parse("k=1&k=2&a=9");
        let m = q.to_map();
        assert_eq!(m.get("k").map(String::as_str), Some("1"));
        assert_eq!(m.get("a").map(String::as_str), Some("9"));
    }

    #[test]
    fn pooled_storage_roundtrip() {
        let mut q = QueryParams::with_storage(vec![(HStr::new("old"), HStr::new("gone"))]);
        assert!(q.is_empty(), "storage is cleared on loan");
        q.append("k", "v");
        let storage = q.into_storage();
        assert_eq!(storage.len(), 1);
        let q2 = QueryParams::with_storage(storage);
        assert!(q2.is_empty());
    }
}
