//! A minimal JSON value type with parser and serializer.
//!
//! Bid requests, bid responses and DOM event payloads in this reproduction
//! are structured data; a small self-contained JSON implementation keeps the
//! detector auditable and avoids pulling a serialization framework into the
//! measurement boundary. Supports the full JSON grammar except for
//! `\u` surrogate pairs being passed through unpaired.

use crate::hstr::HStr;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string (compact storage: static, inline, or shared).
    Str(HStr),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys for deterministic serialization).
    Obj(BTreeMap<HStr, Json>),
}

/// Error from [`Json::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Shorthand: build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (HStr::from_static(k), v))
                .collect(),
        )
    }

    /// Shorthand: a string value.
    pub fn str(s: impl Into<HStr>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand: a numeric value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Field access on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable field access on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// Insert into an object; no-op (returning false) on non-objects.
    pub fn insert(&mut self, key: impl Into<HStr>, value: Json) -> bool {
        match self {
            Json::Obj(m) => {
                m.insert(key.into(), value);
                true
            }
            _ => false,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object content, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<HStr, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Walk a dotted path (`"a.b.c"`) through nested objects.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        let mut cur = self;
        for part in dotted.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Serialize to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                use fmt::Write as _;
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<HStr, JsonError> {
        self.expect(b'"')?;
        // Fast path: no escape before the closing quote — borrow the slice
        // directly (short strings are then stored inline, unescaped text
        // never round-trips through a temporary `String`).
        let start = self.pos;
        let mut i = self.pos;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'"' => {
                    let text = std::str::from_utf8(&self.bytes[start..i])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    self.pos = i + 1;
                    return Ok(HStr::new(text));
                }
                b'\\' => break,
                _ => i += 1,
            }
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(HStr::from(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_nested() {
        let doc = r#"{"bids":[{"bidder":"appnexus","cpm":0.52,"size":"300x250"}],"ok":true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.path("bids").unwrap().as_arr().unwrap()[0]
                .get("bidder")
                .unwrap()
                .as_str(),
            Some("appnexus")
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn roundtrip() {
        let doc = r#"{"a":[1,2.5,null,"x\"y"],"b":{"c":false}}"#;
        let v = Json::parse(doc).unwrap();
        let s = v.to_string_compact();
        let v2 = Json::parse(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn escapes() {
        let v = Json::parse(r#""line\nbreak\tand A""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak\tand A"));
        let out = Json::str("a\"b\\c\nd").to_string_compact();
        assert_eq!(Json::parse(&out).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.at >= 6, "at {}", e.at);
        assert!(Json::parse("[1,2,").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn obj_builder_and_path() {
        let v = Json::obj([
            ("auction", Json::str("abc")),
            (
                "meta",
                Json::obj([("cpm", Json::num(0.31)), ("late", Json::Bool(false))]),
            ),
        ]);
        assert_eq!(v.path("meta.cpm").unwrap().as_f64(), Some(0.31));
        assert_eq!(v.path("meta.missing"), None);
        assert_eq!(v.path("auction").unwrap().as_str(), Some("abc"));
    }

    #[test]
    fn insert_only_on_objects() {
        let mut v = Json::obj([]);
        assert!(v.insert("k", Json::num(1.0)));
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
        let mut arr = Json::Arr(vec![]);
        assert!(!arr.insert("k", Json::Null));
    }

    #[test]
    fn integer_formatting_is_compact() {
        assert_eq!(Json::num(300.0).to_string_compact(), "300");
        assert_eq!(Json::num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn unicode_content_survives() {
        let v = Json::parse("\"héllo ▲\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ▲"));
        let rt = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, rt);
    }
}
