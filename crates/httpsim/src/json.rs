//! A minimal JSON value type with parser and serializer.
//!
//! Bid requests, bid responses and DOM event payloads in this reproduction
//! are structured data; a small self-contained JSON implementation keeps the
//! detector auditable and avoids pulling a serialization framework into the
//! measurement boundary. Supports the full JSON grammar except for
//! `\u` surrogate pairs being passed through unpaired.
//!
//! ## Representation and pooling
//!
//! Objects are a **sorted `Vec<(HStr, Json)>`** ([`JsonObj`]): lookups
//! binary-search, insertion keeps sort order, so iteration and
//! serialization are byte-identical to the previous `BTreeMap`
//! representation by construction — while the whole object lives in one
//! contiguous spine instead of one node allocation per key.
//!
//! Those spines (and array spines) are recycled through [`JsonScratch`],
//! a per-worker-thread pool mirroring `MsgScratch`: builders
//! ([`Json::obj`], [`Json::arr`]) and the parser draw cleared spines from
//! the pool, and [`Json::recycle`] walks a dead tree handing every spine
//! back. Message payloads that die inside a visit (request bodies after
//! dispatch, response bodies after parsing) therefore stop touching the
//! allocator in the steady state; trees that escape into records are
//! simply dropped as before — pooling is best-effort and behaviour-free.

use crate::hstr::HStr;
use std::cell::RefCell;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string (compact storage: static, inline, or shared).
    Str(HStr),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys for deterministic serialization).
    Obj(JsonObj),
}

/// A JSON object: key-sorted `Vec` of entries with unique keys.
///
/// Semantically a drop-in for the `BTreeMap<HStr, Json>` it replaced:
/// `insert` keeps entries sorted (last write to a key wins), `get` is a
/// binary search, iteration yields keys in ascending order. Equality,
/// ordering of serialization bytes, and parameter-flattening order are
/// therefore unchanged by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JsonObj {
    entries: Vec<(HStr, Json)>,
}

impl JsonObj {
    /// An empty object backed by a recycled spine when one is pooled.
    pub fn new() -> JsonObj {
        JsonObj {
            entries: JsonScratch::take_obj_spine(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Position of `key`, or where it would insert.
    #[inline]
    fn search(&self, key: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key))
    }

    /// Value for `key`, if present (binary search).
    pub fn get(&self, key: &str) -> Option<&Json> {
        let i = self.search(key).ok()?;
        Some(&self.entries[i].1)
    }

    /// Mutable value for `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        let i = self.search(key).ok()?;
        Some(&mut self.entries[i].1)
    }

    /// Insert a key/value pair, keeping entries sorted. Returns the
    /// previous value when the key was already present (last write wins —
    /// `BTreeMap::insert` semantics).
    pub fn insert(&mut self, key: impl Into<HStr>, value: Json) -> Option<Json> {
        let key = key.into();
        match self.search(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Iterate `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&HStr, &Json)> {
        self.entries.iter().map(|e| (&e.0, &e.1))
    }
}

impl<'a> IntoIterator for &'a JsonObj {
    type Item = (&'a HStr, &'a Json);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (HStr, Json)>,
        fn(&'a (HStr, Json)) -> (&'a HStr, &'a Json),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|e| (&e.0, &e.1))
    }
}

impl FromIterator<(HStr, Json)> for JsonObj {
    fn from_iter<T: IntoIterator<Item = (HStr, Json)>>(iter: T) -> JsonObj {
        let mut obj = JsonObj::new();
        for (k, v) in iter {
            obj.insert(k, v);
        }
        obj
    }
}

/// Upper bound on pooled spines of each kind.
const SPINE_POOL_CAP: usize = 64;

/// Per-worker-thread recycling pool for JSON `Vec` spines (object entry
/// vectors and array element vectors), mirroring `MsgScratch`'s role for
/// query/header buffers. One pool per thread; builders and the parser pull
/// from it implicitly, [`Json::recycle`] pays trees back in.
#[derive(Default)]
pub struct JsonScratch {
    objs: Vec<Vec<(HStr, Json)>>,
    arrs: Vec<Vec<Json>>,
}

thread_local! {
    static JSON_SCRATCH: RefCell<JsonScratch> = RefCell::new(JsonScratch::default());
}

impl JsonScratch {
    /// A cleared object spine, recycled when the pool has one.
    fn take_obj_spine() -> Vec<(HStr, Json)> {
        JSON_SCRATCH.with(|s| s.borrow_mut().objs.pop().unwrap_or_default())
    }

    /// A cleared array spine, recycled when the pool has one.
    fn take_arr_spine() -> Vec<Json> {
        JSON_SCRATCH.with(|s| s.borrow_mut().arrs.pop().unwrap_or_default())
    }

    /// Recycle a dead JSON tree: every object and array spine with real
    /// capacity returns to this thread's pool (bounded by
    /// [`SPINE_POOL_CAP`]); strings and scalars are dropped as usual.
    pub fn recycle(j: Json) {
        JSON_SCRATCH.with(|s| Self::recycle_into(&mut s.borrow_mut(), j));
    }

    fn recycle_into(pool: &mut JsonScratch, j: Json) {
        match j {
            Json::Arr(mut items) => {
                for item in items.drain(..) {
                    Self::recycle_into(pool, item);
                }
                if items.capacity() > 0 && pool.arrs.len() < SPINE_POOL_CAP {
                    pool.arrs.push(items);
                }
            }
            Json::Obj(obj) => {
                let mut entries = obj.entries;
                for (_, v) in entries.drain(..) {
                    Self::recycle_into(pool, v);
                }
                if entries.capacity() > 0 && pool.objs.len() < SPINE_POOL_CAP {
                    pool.objs.push(entries);
                }
            }
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => {}
        }
    }

    /// Spines currently pooled on this thread, `(objects, arrays)` —
    /// diagnostics for the allocation tests.
    pub fn pooled_spines() -> (usize, usize) {
        JSON_SCRATCH.with(|s| {
            let s = s.borrow();
            (s.objs.len(), s.arrs.len())
        })
    }
}

/// Error from [`Json::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Shorthand: build an object from `(key, value)` pairs (last write
    /// to a duplicate key wins). The entry spine comes from this thread's
    /// [`JsonScratch`] pool when one is available.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (HStr::from_static(k), v))
                .collect(),
        )
    }

    /// Shorthand: build an array. The element spine comes from this
    /// thread's [`JsonScratch`] pool when one is available.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        let mut v = JsonScratch::take_arr_spine();
        v.extend(items);
        Json::Arr(v)
    }

    /// Hand a dead tree's spines back to this thread's [`JsonScratch`]
    /// pool (behaviour-free: purely an allocator-traffic optimization).
    pub fn recycle(self) {
        JsonScratch::recycle(self);
    }

    /// Shorthand: a string value.
    pub fn str(s: impl Into<HStr>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand: a numeric value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Field access on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable field access on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// Insert into an object; no-op (returning false) on non-objects.
    pub fn insert(&mut self, key: impl Into<HStr>, value: Json) -> bool {
        match self {
            Json::Obj(m) => {
                m.insert(key.into(), value);
                true
            }
            _ => false,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The underlying [`HStr`], if this is a string. Callers that keep
    /// the value should clone this handle instead of re-building one from
    /// [`Json::as_str`] — an inline/static `HStr` copies in place and a
    /// shared one bumps its refcount, so nothing re-allocates even when
    /// the string is past the inline cap.
    pub fn as_hstr(&self) -> Option<&HStr> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object content, if this is an object.
    pub fn as_obj(&self) -> Option<&JsonObj> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Walk a dotted path (`"a.b.c"`) through nested objects.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        let mut cur = self;
        for part in dotted.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Serialize to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                use fmt::Write as _;
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    // `iter` ascends sorted keys, so the serialized bytes
                    // match the former BTreeMap representation exactly.
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = JsonScratch::take_arr_spine();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = JsonObj::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<HStr, JsonError> {
        self.expect(b'"')?;
        // Fast path: no escape before the closing quote — borrow the slice
        // directly (short strings are then stored inline, unescaped text
        // never round-trips through a temporary `String`).
        let start = self.pos;
        let mut i = self.pos;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'"' => {
                    let text = std::str::from_utf8(&self.bytes[start..i])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    self.pos = i + 1;
                    return Ok(HStr::new(text));
                }
                b'\\' => break,
                _ => i += 1,
            }
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(HStr::from(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_nested() {
        let doc = r#"{"bids":[{"bidder":"appnexus","cpm":0.52,"size":"300x250"}],"ok":true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.path("bids").unwrap().as_arr().unwrap()[0]
                .get("bidder")
                .unwrap()
                .as_str(),
            Some("appnexus")
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn roundtrip() {
        let doc = r#"{"a":[1,2.5,null,"x\"y"],"b":{"c":false}}"#;
        let v = Json::parse(doc).unwrap();
        let s = v.to_string_compact();
        let v2 = Json::parse(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn escapes() {
        let v = Json::parse(r#""line\nbreak\tand A""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nbreak\tand A"));
        let out = Json::str("a\"b\\c\nd").to_string_compact();
        assert_eq!(Json::parse(&out).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.at >= 6, "at {}", e.at);
        assert!(Json::parse("[1,2,").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn obj_builder_and_path() {
        let v = Json::obj([
            ("auction", Json::str("abc")),
            (
                "meta",
                Json::obj([("cpm", Json::num(0.31)), ("late", Json::Bool(false))]),
            ),
        ]);
        assert_eq!(v.path("meta.cpm").unwrap().as_f64(), Some(0.31));
        assert_eq!(v.path("meta.missing"), None);
        assert_eq!(v.path("auction").unwrap().as_str(), Some("abc"));
    }

    #[test]
    fn insert_only_on_objects() {
        let mut v = Json::obj([]);
        assert!(v.insert("k", Json::num(1.0)));
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
        let mut arr = Json::Arr(vec![]);
        assert!(!arr.insert("k", Json::Null));
    }

    #[test]
    fn integer_formatting_is_compact() {
        assert_eq!(Json::num(300.0).to_string_compact(), "300");
        assert_eq!(Json::num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn sorted_vec_object_duplicate_key_last_write_wins() {
        let mut obj = JsonObj::new();
        assert_eq!(obj.insert("k", Json::num(1.0)), None);
        assert_eq!(obj.insert("a", Json::num(2.0)), None);
        // Re-inserting replaces in place and returns the old value.
        assert_eq!(obj.insert("k", Json::num(3.0)), Some(Json::num(1.0)));
        assert_eq!(obj.len(), 2);
        assert_eq!(obj.get("k").unwrap().as_f64(), Some(3.0));
        // Builder sugar behaves the same way (BTreeMap collect semantics).
        let v = Json::obj([("k", Json::num(1.0)), ("k", Json::num(9.0))]);
        assert_eq!(v.get("k").unwrap().as_f64(), Some(9.0));
        assert_eq!(v.as_obj().unwrap().len(), 1);
        // And so does the parser.
        let p = Json::parse(r#"{"k":1,"k":9}"#).unwrap();
        assert_eq!(p.get("k").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn sorted_vec_object_lookup_miss_and_empty() {
        let empty = JsonObj::new();
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.get("anything"), None);
        assert_eq!(Json::Obj(empty).to_string_compact(), "{}");

        let v = Json::obj([("bb", Json::num(1.0)), ("dd", Json::num(2.0))]);
        let obj = v.as_obj().unwrap();
        // Misses before, between, and after the sorted entries.
        assert_eq!(obj.get("aa"), None);
        assert_eq!(obj.get("cc"), None);
        assert_eq!(obj.get("zz"), None);
        assert_eq!(obj.get("bb").unwrap().as_f64(), Some(1.0));
        // get on non-objects stays None.
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Arr(vec![]).get("k"), None);
    }

    #[test]
    fn sorted_vec_iteration_is_key_ascending() {
        let v = Json::obj([
            ("zeta", Json::num(1.0)),
            ("alpha", Json::num(2.0)),
            ("mid", Json::num(3.0)),
        ]);
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    /// Serializer fixtures captured from the `BTreeMap<HStr, Json>` build
    /// (the representation before the sorted-vec refactor). The new
    /// representation must reproduce these bytes exactly — this is the
    /// invariant that keeps figure CSVs byte-identical.
    #[test]
    fn serializer_byte_equivalent_to_btreemap_fixtures() {
        let cases: [(Json, &str); 4] = [
            (
                // Insertion order deliberately unsorted.
                Json::obj([
                    ("hb_slot", Json::str("ad-slot-1")),
                    ("bidder", Json::str("appnexus")),
                    ("cpm", Json::num(0.52)),
                    ("hb_size", Json::str("300x250")),
                ]),
                r#"{"bidder":"appnexus","cpm":0.52,"hb_size":"300x250","hb_slot":"ad-slot-1"}"#,
            ),
            (
                Json::obj([
                    ("winners", Json::arr([Json::obj([
                        ("hb_slot", Json::str("s1")),
                        ("channel", Json::str("hb")),
                    ])])),
                    ("hb_auction", Json::str("auc-7")),
                ]),
                r#"{"hb_auction":"auc-7","winners":[{"channel":"hb","hb_slot":"s1"}]}"#,
            ),
            (
                Json::obj([("empty", Json::obj([])), ("arr", Json::arr([]))]),
                r#"{"arr":[],"empty":{}}"#,
            ),
            (
                Json::obj([
                    ("b", Json::Bool(true)),
                    ("a", Json::Null),
                    ("n", Json::num(300.0)),
                ]),
                r#"{"a":null,"b":true,"n":300}"#,
            ),
        ];
        for (value, expected) in cases {
            assert_eq!(value.to_string_compact(), expected);
            // Parsing the fixture reproduces the same value and bytes.
            let reparsed = Json::parse(expected).unwrap();
            assert_eq!(reparsed, value);
            assert_eq!(reparsed.to_string_compact(), expected);
        }
    }

    #[test]
    fn recycled_spines_are_reused_by_builders() {
        // Drain whatever this thread pooled so counts start known.
        JSON_SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            s.objs.clear();
            s.arrs.clear();
        });
        let tree = Json::obj([
            ("bids", Json::arr([Json::obj([("cpm", Json::num(0.4))])])),
            ("ok", Json::Bool(true)),
        ]);
        tree.recycle();
        let (objs, arrs) = JsonScratch::pooled_spines();
        assert!(objs >= 2, "outer + inner object spines pooled, got {objs}");
        assert!(arrs >= 1, "array spine pooled, got {arrs}");
        // Builders drain the pool again.
        let rebuilt = Json::obj([("x", Json::arr([Json::num(1.0)]))]);
        let (objs2, arrs2) = JsonScratch::pooled_spines();
        assert!(objs2 < objs);
        assert!(arrs2 < arrs);
        assert_eq!(rebuilt.to_string_compact(), r#"{"x":[1]}"#);
    }

    #[test]
    fn unicode_content_survives() {
        let v = Json::parse("\"héllo ▲\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ▲"));
        let rt = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, rt);
    }
}
