//! # hb-http
//!
//! Simulation-level HTTP substrate for the header bidding reproduction:
//!
//! * [`Url`] + [`QueryParams`] — URL parsing with a query-string multimap
//!   and percent-encoding (the detector's parameter-extraction surface);
//! * [`Json`] — a minimal, auditable JSON value type for bid payloads;
//! * [`Request`] / [`Response`] — webRequest-level message types;
//! * [`CookieJar`] — clean-slate session state;
//! * [`Endpoint`] / [`Router`] — the simulated server side of the web.
//!
//! Everything is implemented in-repo (no external parsers) so the
//! measurement pipeline is fully auditable end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cookies;
pub mod endpoint;
pub mod json;
pub mod message;
pub mod scratch;
pub mod url;

// `HStr` moved down to `hb-simnet` (so the engine's fault injector can
// key outage sets on it without a dependency cycle); re-export the module
// so every historical `hb_http::hstr::`/`hb_http::HStr` path still works.
pub use hb_simnet::hstr;

pub use cookies::{Cookie, CookieJar};
pub use endpoint::{Endpoint, Router, ServerReply};
pub use hb_simnet::HStr;
pub use json::{Json, JsonError, JsonObj, JsonScratch};
pub use message::{Body, Headers, Method, Request, RequestId, Response, Status};
pub use scratch::MsgScratch;
pub use url::{percent_decode, percent_encode, percent_encode_into, QueryParams, Url, UrlError};
