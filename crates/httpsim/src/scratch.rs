//! Per-worker scratch storage for visit execution.
//!
//! A simulated visit builds and tears down dozens of short-lived messages:
//! URLs with query multimaps, headers, request/response shells. Left to
//! the global allocator, each visit repeats the same pattern of small
//! `Vec` allocations. [`MsgScratch`] is the per-worker recycling pool
//! that breaks the cycle: buffers are loaned out during a visit, returned
//! when a message dies, and reused by the next visit on the same worker.
//!
//! ## Invariants
//!
//! * One scratch per worker thread — never shared, never `Send`-required.
//! * [`MsgScratch::begin_visit`] starts a new *generation* (a visit
//!   counter, exposed for diagnostics); buffers recycled under an older
//!   generation are still safe to reuse because every buffer is cleared
//!   on return to the pool.
//! * Recycling is best-effort: a message that escapes (e.g. stored in
//!   ground truth) is simply dropped by the allocator as before. The pool
//!   only ever *reduces* allocator traffic; it never changes behaviour.

use crate::hstr::HStr;
use crate::json::{Json, JsonScratch};
use crate::message::{Body, Request};
use crate::url::QueryParams;

/// Upper bound on pooled buffers of each kind (a visit rarely has more
/// than a dozen messages alive at once; anything beyond this cap is
/// returned to the allocator).
const POOL_CAP: usize = 32;

/// Per-worker recycling pool for visit-scoped message storage.
#[derive(Default)]
pub struct MsgScratch {
    /// Recycled query/header entry buffers.
    params: Vec<Vec<(HStr, HStr)>>,
    /// Monotonic visit counter (diagnostics; see module invariants).
    generation: u64,
}

impl MsgScratch {
    /// Fresh, empty scratch.
    pub fn new() -> MsgScratch {
        MsgScratch::default()
    }

    /// Start a new visit generation.
    pub fn begin_visit(&mut self) {
        self.generation += 1;
    }

    /// The current visit generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Loan an empty `QueryParams` backed by recycled storage.
    pub fn take_params(&mut self) -> QueryParams {
        match self.params.pop() {
            Some(buf) => QueryParams::with_storage(buf),
            None => QueryParams::new(),
        }
    }

    /// Return a `QueryParams`'s storage to the pool.
    pub fn recycle_params(&mut self, q: QueryParams) {
        self.keep(q.into_storage());
    }

    /// Recycle every pooled component of a finished request. The `HStr`
    /// components (host, path, initiator) are cheap to drop; only the
    /// entry vectors (and any JSON tree's spines) are worth keeping.
    pub fn recycle_request(&mut self, req: Request) {
        let Request {
            url, headers, body, ..
        } = req;
        self.keep(url.query.into_storage());
        self.keep(headers.into_storage());
        self.recycle_body(body);
    }

    /// Recycle a finished message body: form entry vectors return to this
    /// pool, JSON trees hand their spines to the thread's [`JsonScratch`].
    pub fn recycle_body(&mut self, body: Body) {
        match body {
            Body::Form(q) => self.keep(q.into_storage()),
            Body::Json(j) => JsonScratch::recycle(j),
            Body::Text(_) | Body::Empty => {}
        }
    }

    /// Recycle a dead JSON tree (see [`JsonScratch::recycle`]) — the
    /// worker-side door for payloads that die outside a message, e.g.
    /// DOM event payloads after they have been fired.
    pub fn recycle_json(&mut self, j: Json) {
        JsonScratch::recycle(j);
    }

    /// Keep a buffer for reuse when it holds real capacity and the pool
    /// has room; otherwise let the allocator reclaim it.
    fn keep(&mut self, mut buf: Vec<(HStr, HStr)>) {
        if buf.capacity() > 0 && self.params.len() < POOL_CAP {
            buf.clear();
            self.params.push(buf);
        }
    }

    /// Number of buffers currently cached (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RequestId;
    use crate::url::Url;

    #[test]
    fn params_roundtrip_through_pool() {
        let mut s = MsgScratch::new();
        s.begin_visit();
        let mut q = s.take_params();
        q.append("hb_bidder", "appnexus");
        s.recycle_params(q);
        assert_eq!(s.pooled_buffers(), 1);
        let q2 = s.take_params();
        assert!(q2.is_empty(), "recycled storage is cleared");
        assert_eq!(s.pooled_buffers(), 0);
    }

    #[test]
    fn requests_recycle_their_query_storage() {
        let mut s = MsgScratch::new();
        s.begin_visit();
        let mut q = s.take_params();
        q.append("k", "v");
        let url = Url::https_pooled(HStr::new("x.example"), HStr::from_static("/bid"), q);
        let req = Request::get(RequestId(1), url);
        s.recycle_request(req);
        assert!(s.pooled_buffers() >= 1);
    }

    #[test]
    fn generations_advance() {
        let mut s = MsgScratch::new();
        s.begin_visit();
        let g1 = s.generation();
        s.begin_visit();
        assert_eq!(s.generation(), g1 + 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = MsgScratch::new();
        for _ in 0..100 {
            let mut q = QueryParams::new();
            q.append("a", "b"); // force a real allocation to pool
            s.recycle_params(q);
        }
        assert!(s.pooled_buffers() <= super::POOL_CAP);
    }
}
