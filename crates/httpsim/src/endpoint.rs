//! Server-side endpoints and host routing.
//!
//! The simulated "Internet" is a router mapping hostnames to [`Endpoint`]
//! implementations. An endpoint receives a request plus a deterministic RNG
//! and returns a [`ServerReply`]: the response together with the server-side
//! processing delay (network RTT is added separately by the latency model).

use crate::hstr::HStr;
use crate::message::{Request, Response};
use hb_simnet::rng::Rng;
use hb_simnet::time::SimDuration;
use hb_simnet::FxHashMap;

/// What a server does with a request.
#[derive(Debug)]
pub struct ServerReply {
    /// The response to deliver.
    pub response: Response,
    /// Server-side processing time (added on top of network RTT).
    pub processing: SimDuration,
}

impl ServerReply {
    /// Reply instantly.
    pub fn instant(response: Response) -> ServerReply {
        ServerReply {
            response,
            processing: SimDuration::ZERO,
        }
    }

    /// Reply after a processing delay.
    pub fn after(response: Response, processing: SimDuration) -> ServerReply {
        ServerReply {
            response,
            processing,
        }
    }
}

/// A simulated remote server.
pub trait Endpoint {
    /// Handle one request. `rng` is a per-request deterministic stream.
    fn handle(&self, req: &Request, rng: &mut Rng) -> ServerReply;
}

impl<F> Endpoint for F
where
    F: Fn(&Request, &mut Rng) -> ServerReply,
{
    fn handle(&self, req: &Request, rng: &mut Rng) -> ServerReply {
        self(req, rng)
    }
}

/// Routes requests to endpoints by hostname.
///
/// Registration supports exact hosts and wildcard-ish base domains: a
/// request to `fast.cdn.example.com` matches a registration for
/// `example.com` when no more specific host is registered.
#[derive(Default)]
pub struct Router {
    // Fx-hashed: resolved twice per request (DNS check + dispatch);
    // lookups only, never iterated for output. Keys are compact `HStr`s
    // (equality/hash delegate to the text), so registering an interned
    // hostname is a handle clone, not a fresh `String`.
    exact: FxHashMap<HStr, Box<dyn Endpoint + Send + Sync>>,
    by_domain: FxHashMap<HStr, Box<dyn Endpoint + Send + Sync>>,
}

impl Router {
    /// Empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Register an endpoint for an exact hostname.
    pub fn register(
        &mut self,
        host: impl Into<HStr>,
        ep: impl Endpoint + Send + Sync + 'static,
    ) {
        self.exact.insert(host.into().into_lower_ascii(), Box::new(ep));
    }

    /// Register an endpoint for a base domain (matches all subdomains).
    pub fn register_domain(
        &mut self,
        domain: impl Into<HStr>,
        ep: impl Endpoint + Send + Sync + 'static,
    ) {
        self.by_domain
            .insert(domain.into().into_lower_ascii(), Box::new(ep));
    }

    /// Look up the endpoint for a host.
    pub fn resolve(&self, host: &str) -> Option<&dyn Endpoint> {
        if let Some(ep) = self.exact.get(host) {
            return Some(ep.as_ref());
        }
        // Walk suffixes: a.b.c.com -> b.c.com -> c.com
        let mut rest = host;
        loop {
            if let Some(ep) = self.by_domain.get(rest) {
                return Some(ep.as_ref());
            }
            match rest.split_once('.') {
                Some((_, suffix)) if !suffix.is_empty() => rest = suffix,
                _ => return None,
            }
        }
    }

    /// Dispatch a request; `None` when the host is unknown (NXDOMAIN).
    pub fn dispatch(&self, req: &Request, rng: &mut Rng) -> Option<ServerReply> {
        self.resolve(&req.url.host).map(|ep| ep.handle(req, rng))
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.exact.len() + self.by_domain.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.by_domain.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{RequestId, Status};
    use crate::url::Url;

    fn req(u: &str) -> Request {
        Request::get(RequestId(1), Url::parse(u).unwrap())
    }

    fn ok_endpoint(tag: &'static str) -> impl Endpoint {
        move |r: &Request, _rng: &mut Rng| {
            ServerReply::instant(Response::text(r.id, tag))
        }
    }

    #[test]
    fn exact_match_wins_over_domain() {
        let mut router = Router::new();
        router.register("api.example.com", ok_endpoint("exact"));
        router.register_domain("example.com", ok_endpoint("domain"));
        let mut rng = Rng::new(1);
        let r = router
            .dispatch(&req("https://api.example.com/x"), &mut rng)
            .unwrap();
        assert_eq!(r.response.body.as_text().unwrap(), "exact");
        let r2 = router
            .dispatch(&req("https://other.example.com/x"), &mut rng)
            .unwrap();
        assert_eq!(r2.response.body.as_text().unwrap(), "domain");
    }

    #[test]
    fn unknown_host_is_none() {
        let router = Router::new();
        let mut rng = Rng::new(2);
        assert!(router.dispatch(&req("https://ghost.example/x"), &mut rng).is_none());
    }

    #[test]
    fn suffix_walk_matches_deep_subdomains() {
        let mut router = Router::new();
        router.register_domain("adnet.example", ok_endpoint("d"));
        let mut rng = Rng::new(3);
        let r = router
            .dispatch(&req("https://a.b.c.adnet.example/bid"), &mut rng)
            .unwrap();
        assert_eq!(r.response.status, Status::OK);
    }

    #[test]
    fn closure_endpoints_get_rng() {
        let mut router = Router::new();
        router.register("rand.example", |r: &Request, rng: &mut Rng| {
            let v = rng.below(10);
            ServerReply::instant(Response::text(r.id, format!("{v}")))
        });
        let mut rng_a = Rng::new(7);
        let mut rng_b = Rng::new(7);
        let a = router.dispatch(&req("https://rand.example/"), &mut rng_a).unwrap();
        let b = router.dispatch(&req("https://rand.example/"), &mut rng_b).unwrap();
        assert_eq!(
            a.response.body.as_text(),
            b.response.body.as_text(),
            "same seed, same reply"
        );
    }

    #[test]
    fn len_counts_both_kinds() {
        let mut router = Router::new();
        assert!(router.is_empty());
        router.register("a.example", ok_endpoint("a"));
        router.register_domain("b.example", ok_endpoint("b"));
        assert_eq!(router.len(), 2);
    }
}
