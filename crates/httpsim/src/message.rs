//! HTTP request/response message types.
//!
//! These are simulation-level messages, not wire-format parsers: the
//! simulated browser and endpoints exchange structured values, and the
//! detector inspects them exactly the way a browser extension inspects
//! `webRequest` details (method, URL, headers, body).

use crate::hstr::{lower_ascii, HStr};
use crate::json::Json;
use crate::url::{QueryParams, Url};
use std::fmt;

/// HTTP method subset used by ad-tech traffic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Safe retrieval.
    Get,
    /// Submission (bid requests are POSTs in prebid).
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// Case-insensitive header map (names stored lower-cased).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(HStr, HStr)>,
}

impl Headers {
    /// Empty header set.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Take the entry storage back for recycling (see
    /// [`MsgScratch`](crate::MsgScratch)).
    pub fn into_storage(self) -> Vec<(HStr, HStr)> {
        self.entries
    }

    /// Set a header, replacing existing values.
    pub fn set(&mut self, name: &str, value: impl Into<HStr>) {
        let lname = lower_ascii(name);
        self.entries.retain(|(n, _)| *n != lname);
        self.entries.push((lname, value.into()));
    }

    /// Get a header value.
    pub fn get(&self, name: &str) -> Option<&str> {
        let lname = lower_ascii(name);
        self.entries
            .iter()
            .find(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

/// A message body.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Body {
    /// No body.
    #[default]
    Empty,
    /// Plain text (HTML pages, scripts). Stored as [`HStr`], so a long
    /// shared document (a memoized publisher page) is one `Arc<str>`
    /// cloned per response instead of a fresh `String` copy.
    Text(HStr),
    /// Structured JSON (bid requests/responses).
    Json(Json),
    /// `application/x-www-form-urlencoded` pairs.
    Form(QueryParams),
}

impl Body {
    /// Borrow the structured JSON body, without parsing or cloning.
    ///
    /// Returns `None` for text bodies even when they contain JSON — use
    /// [`Body::with_json`] (borrowing) or [`Body::into_json`] (owning)
    /// when opportunistic text parsing is wanted.
    pub fn json(&self) -> Option<&Json> {
        match self {
            Body::Json(j) => Some(j),
            _ => None,
        }
    }

    /// Consume the body into JSON, parsing text bodies opportunistically.
    /// The common `Body::Json` case moves the tree out without cloning.
    pub fn into_json(self) -> Option<Json> {
        match self {
            Body::Json(j) => Some(j),
            Body::Text(t) => Json::parse(&t).ok(),
            _ => None,
        }
    }

    /// Run `f` against this body's JSON view: structured bodies are
    /// borrowed directly (no clone), text bodies are parsed
    /// opportunistically into a temporary. `None` when the body has no
    /// JSON interpretation.
    pub fn with_json<R>(&self, f: impl FnOnce(&Json) -> R) -> Option<R> {
        match self {
            Body::Json(j) => Some(f(j)),
            Body::Text(t) => Json::parse(t).ok().map(|j| f(&j)),
            _ => None,
        }
    }

    /// Body as text where meaningful.
    pub fn as_text(&self) -> Option<String> {
        match self {
            Body::Text(t) => Some(t.as_str().to_owned()),
            Body::Json(j) => Some(j.to_string_compact()),
            Body::Form(q) => Some(q.encode()),
            Body::Empty => None,
        }
    }

    /// Approximate size in bytes (for network accounting).
    pub fn byte_len(&self) -> usize {
        match self {
            Body::Empty => 0,
            Body::Text(t) => t.len(),
            Body::Json(j) => j.to_string_compact().len(),
            Body::Form(q) => q.encode().len(),
        }
    }

    /// True when no payload is present.
    pub fn is_empty(&self) -> bool {
        matches!(self, Body::Empty)
    }

    /// Visit the parameters this body exposes, in the same order
    /// `visible_params` flattens them. Form and empty bodies visit
    /// without heap allocation; JSON numbers/bools are formatted into one
    /// reusable buffer.
    pub fn for_each_visible_param<F: FnMut(&str, &str)>(&self, f: &mut F) {
        self.any_visible_param(&mut |k, v| {
            f(k, v);
            false
        });
    }

    /// Short-circuiting scan over this body's visible parameters: stops
    /// at the first pair for which `pred` returns true, skipping the
    /// value formatting and traversal of everything after it.
    pub fn any_visible_param<F: FnMut(&str, &str) -> bool>(&self, pred: &mut F) -> bool {
        match self {
            Body::Form(q) => q.iter().any(|(k, v)| pred(k, v)),
            Body::Json(j) => {
                let mut buf = String::new();
                probe_json_params(j, pred, &mut buf)
            }
            Body::Text(t) => {
                if let Ok(j) = Json::parse(t) {
                    let mut buf = String::new();
                    probe_json_params(&j, pred, &mut buf)
                } else {
                    false
                }
            }
            Body::Empty => false,
        }
    }
}

/// Borrowing, short-circuiting twin of `flatten_json_params`: same
/// traversal and value formatting, but scalar strings are passed through
/// without cloning and the walk stops once `pred` returns true.
fn probe_json_params<F: FnMut(&str, &str) -> bool>(j: &Json, pred: &mut F, buf: &mut String) -> bool {
    use std::fmt::Write as _;
    match j {
        Json::Obj(m) => {
            for (k, v) in m {
                let hit = match v {
                    Json::Str(s) => pred(k, s),
                    Json::Num(n) => {
                        buf.clear();
                        if n.fract() == 0.0 && n.abs() < 1e15 {
                            let _ = write!(buf, "{}", *n as i64);
                        } else {
                            let _ = write!(buf, "{n}");
                        }
                        pred(k, buf)
                    }
                    Json::Bool(b) => pred(k, if *b { "true" } else { "false" }),
                    Json::Arr(_) | Json::Obj(_) => probe_json_params(v, pred, buf),
                    Json::Null => false,
                };
                if hit {
                    return true;
                }
            }
            false
        }
        Json::Arr(items) => items.iter().any(|item| probe_json_params(item, pred, buf)),
        _ => false,
    }
}

/// Monotonic id correlating a request with its response within one page load.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// An outgoing HTTP request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Correlation id, unique within a browser session.
    pub id: RequestId,
    /// Method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Headers.
    pub headers: Headers,
    /// Body.
    pub body: Body,
    /// Who initiated it (document, script name, extension) — mirrors the
    /// `initiator` field of the Chrome webRequest API.
    pub initiator: HStr,
}

impl Request {
    /// Construct a GET request.
    pub fn get(id: RequestId, url: Url) -> Request {
        Request {
            id,
            method: Method::Get,
            url,
            headers: Headers::new(),
            body: Body::Empty,
            initiator: HStr::EMPTY,
        }
    }

    /// Construct a POST request with a body.
    pub fn post(id: RequestId, url: Url, body: Body) -> Request {
        Request {
            id,
            method: Method::Post,
            url,
            headers: Headers::new(),
            body,
            initiator: HStr::EMPTY,
        }
    }

    /// Builder-style initiator tag.
    pub fn from_initiator(mut self, initiator: impl Into<HStr>) -> Request {
        self.initiator = initiator.into();
        self
    }

    /// All parameters visible in this request: URL query parameters plus
    /// form-body parameters plus flattened top-level JSON string/number
    /// fields. This is the surface the detector scans for `hb_*` keys.
    pub fn visible_params(&self) -> QueryParams {
        let mut out = QueryParams::new();
        for (k, v) in self.url.query.iter() {
            out.append(k, v);
        }
        match &self.body {
            Body::Form(q) => {
                for (k, v) in q.iter() {
                    out.append(k, v);
                }
            }
            Body::Json(j) => flatten_json_params(j, &mut out),
            Body::Text(t) => {
                if let Ok(j) = Json::parse(t) {
                    flatten_json_params(&j, &mut out);
                }
            }
            Body::Empty => {}
        }
        out
    }

    /// Visit every parameter visible in this request (URL query, then
    /// body), in [`visible_params`](Self::visible_params) order, without
    /// building an owned map. Requests with form or empty bodies are
    /// visited with zero heap allocation — this is the detector's
    /// per-request hot path.
    pub fn for_each_visible_param<F: FnMut(&str, &str)>(&self, mut f: F) {
        for (k, v) in self.url.query.iter() {
            f(k, v);
        }
        self.body.for_each_visible_param(&mut f);
    }
}

/// HTTP status code (only the handful the simulation uses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK
    pub const OK: Status = Status(200);
    /// 204 No Content (no-bid responses)
    pub const NO_CONTENT: Status = Status(204);
    /// 400 Bad Request
    pub const BAD_REQUEST: Status = Status(400);
    /// 404 Not Found
    pub const NOT_FOUND: Status = Status(404);
    /// 500 Internal Server Error
    pub const SERVER_ERROR: Status = Status(500);
    /// 504 Gateway Timeout
    pub const TIMEOUT: Status = Status(504);

    /// Is this a success status?
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An incoming HTTP response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Correlates with [`Request::id`].
    pub request_id: RequestId,
    /// Status code.
    pub status: Status,
    /// Headers.
    pub headers: Headers,
    /// Body.
    pub body: Body,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn json(request_id: RequestId, body: Json) -> Response {
        Response {
            request_id,
            status: Status::OK,
            headers: Headers::new(),
            body: Body::Json(body),
        }
    }

    /// A 200 response with a text body. Accepts anything `HStr`-able —
    /// pass an existing `HStr` to share its storage across responses.
    pub fn text(request_id: RequestId, body: impl Into<HStr>) -> Response {
        Response {
            request_id,
            status: Status::OK,
            headers: Headers::new(),
            body: Body::Text(body.into()),
        }
    }

    /// A 204 no-content response (e.g. a no-bid).
    pub fn no_content(request_id: RequestId) -> Response {
        Response {
            request_id,
            status: Status::NO_CONTENT,
            headers: Headers::new(),
            body: Body::Empty,
        }
    }

    /// An error response with the given status.
    pub fn error(request_id: RequestId, status: Status) -> Response {
        Response {
            request_id,
            status,
            headers: Headers::new(),
            body: Body::Empty,
        }
    }

    /// Parameters visible in the response body (JSON flattened); this is
    /// what the detector scans to find `hb_*` keys in Server-Side HB.
    pub fn visible_params(&self) -> QueryParams {
        let mut out = QueryParams::new();
        match &self.body {
            Body::Form(q) => {
                for (k, v) in q.iter() {
                    out.append(k, v);
                }
            }
            Body::Json(j) => flatten_json_params(j, &mut out),
            Body::Text(t) => {
                if let Ok(j) = Json::parse(t) {
                    flatten_json_params(&j, &mut out);
                }
            }
            Body::Empty => {}
        }
        out
    }

    /// Visit every parameter visible in this response body without
    /// building an owned map (the detector probes every completed
    /// response for `hb_*` keys).
    pub fn for_each_visible_param<F: FnMut(&str, &str)>(&self, mut f: F) {
        self.body.for_each_visible_param(&mut f);
    }
}

/// Flatten scalar JSON fields (recursively, dotted-key-free) into params.
/// Arrays are recursed; nested object keys are emitted at their own name,
/// matching how ad servers echo `hb_*` targeting maps.
///
/// Implemented on top of the borrowing probe so numbers and booleans are
/// formatted through one reusable buffer instead of a fresh `String` per
/// key — the only allocations left are the owned copies `QueryParams`
/// itself stores.
fn flatten_json_params(j: &Json, out: &mut QueryParams) {
    let mut buf = String::new();
    probe_json_params(
        j,
        &mut |k, v| {
            out.append(k, v);
            false
        },
        &mut buf,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "application/json");
        assert_eq!(h.get("content-type"), Some("application/json"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
        h.set("content-type", "text/html");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("Content-Type"), Some("text/html"));
    }

    #[test]
    fn request_constructors() {
        let r = Request::get(RequestId(1), url("https://x.com/a"));
        assert_eq!(r.method, Method::Get);
        assert!(r.body.is_empty());
        let p = Request::post(
            RequestId(2),
            url("https://x.com/bid"),
            Body::Json(Json::obj([("cpm", Json::num(1.0))])),
        )
        .from_initiator("prebid.js");
        assert_eq!(p.method, Method::Post);
        assert_eq!(p.initiator, "prebid.js");
    }

    #[test]
    fn visible_params_merges_url_and_body() {
        let mut form = QueryParams::new();
        form.append("hb_bidder", "rubicon");
        let r = Request::post(
            RequestId(3),
            url("https://x.com/bid?hb_pb=0.50"),
            Body::Form(form),
        );
        let p = r.visible_params();
        assert_eq!(p.get("hb_pb"), Some("0.50"));
        assert_eq!(p.get("hb_bidder"), Some("rubicon"));
    }

    #[test]
    fn visible_params_flattens_json() {
        let body = Json::obj([
            ("hb_adid", Json::str("ad-77")),
            (
                "targeting",
                Json::obj([("hb_size", Json::str("300x250")), ("cpm", Json::num(0.42))]),
            ),
            (
                "seats",
                Json::Arr(vec![Json::obj([("hb_bidder", Json::str("openx"))])]),
            ),
        ]);
        let r = Request::post(RequestId(4), url("https://x.com/bid"), Body::Json(body));
        let p = r.visible_params();
        assert_eq!(p.get("hb_adid"), Some("ad-77"));
        assert_eq!(p.get("hb_size"), Some("300x250"));
        assert_eq!(p.get("cpm"), Some("0.42"));
        assert_eq!(p.get("hb_bidder"), Some("openx"));
    }

    #[test]
    fn response_params_from_text_json() {
        let rsp = Response::text(RequestId(5), r#"{"hb_price":"0.31","x":1}"#);
        let p = rsp.visible_params();
        assert_eq!(p.get("hb_price"), Some("0.31"));
        assert_eq!(p.get("x"), Some("1"));
    }

    #[test]
    fn status_predicates() {
        assert!(Status::OK.is_success());
        assert!(Status::NO_CONTENT.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert!(!Status::TIMEOUT.is_success());
    }

    #[test]
    fn body_sizes() {
        assert_eq!(Body::Empty.byte_len(), 0);
        assert_eq!(Body::Text("abcd".into()).byte_len(), 4);
        assert!(Body::Json(Json::obj([("a", Json::num(1.0))])).byte_len() > 0);
    }

    #[test]
    fn body_json_borrows_without_parsing_text() {
        let j = Body::Json(Json::obj([("k", Json::Bool(true))]));
        assert_eq!(j.json().unwrap().get("k").unwrap().as_bool(), Some(true));
        // Borrowing accessor never parses text opportunistically.
        assert!(Body::Text(r#"{"k":true}"#.into()).json().is_none());
        assert!(Body::Empty.json().is_none());
    }

    #[test]
    fn body_into_json_parses_text() {
        let b = Body::Text(r#"{"k":true}"#.into());
        assert_eq!(
            b.into_json().unwrap().get("k").unwrap().as_bool(),
            Some(true)
        );
        assert!(Body::Empty.into_json().is_none());
        let owned = Body::Json(Json::obj([("n", Json::num(4.0))]));
        assert_eq!(owned.into_json().unwrap().get("n").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn body_with_json_covers_both_encodings() {
        let structured = Body::Json(Json::obj([("k", Json::str("v"))]));
        let text = Body::Text(r#"{"k":"v"}"#.into());
        let read = |b: &Body| b.with_json(|j| j.get("k").unwrap().as_str().map(str::to_string));
        assert_eq!(read(&structured).flatten().as_deref(), Some("v"));
        assert_eq!(read(&text).flatten().as_deref(), Some("v"));
        assert!(Body::Empty.with_json(|_| ()).is_none());
        assert!(Body::Text("not json".into()).with_json(|_| ()).is_none());
    }
}
