//! A minimal cookie jar.
//!
//! The crawl methodology in the paper is explicitly *stateless*: a clean
//! browser instance per visit, no cookies, no history. The jar exists so
//! the simulation can (a) prove statelessness in tests and (b) model the
//! user-tracking cookies partners try to set, which matter for the
//! "baseline user" pricing discussion (§5.4).

use crate::url::host_matches;
use std::collections::BTreeMap;

/// One cookie.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain the cookie is scoped to.
    pub domain: String,
}

/// A per-session cookie store.
#[derive(Clone, Debug, Default)]
pub struct CookieJar {
    // (domain, name) -> value
    store: BTreeMap<(String, String), String>,
}

impl CookieJar {
    /// A fresh, empty jar (the crawler's clean-slate state).
    pub fn new() -> Self {
        CookieJar::default()
    }

    /// Store a cookie.
    pub fn set(&mut self, domain: &str, name: &str, value: &str) {
        self.store
            .insert((domain.to_string(), name.to_string()), value.to_string());
    }

    /// Cookies that would be sent to `host` (domain-suffix matching).
    pub fn cookies_for(&self, host: &str) -> Vec<Cookie> {
        self.store
            .iter()
            .filter(|((domain, _), _)| host_matches(host, domain))
            .map(|((domain, name), value)| Cookie {
                name: name.clone(),
                value: value.clone(),
                domain: domain.clone(),
            })
            .collect()
    }

    /// Total cookies stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no cookies are stored (clean-slate invariant).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.store.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_jar_is_empty() {
        let jar = CookieJar::new();
        assert!(jar.is_empty());
        assert_eq!(jar.len(), 0);
        assert!(jar.cookies_for("any.example").is_empty());
    }

    #[test]
    fn set_and_match_by_domain_suffix() {
        let mut jar = CookieJar::new();
        jar.set("tracker.example", "uid", "abc123");
        assert_eq!(jar.cookies_for("tracker.example").len(), 1);
        assert_eq!(jar.cookies_for("cdn.tracker.example").len(), 1);
        assert!(jar.cookies_for("other.example").is_empty());
        assert!(jar.cookies_for("nottracker.example").is_empty());
    }

    #[test]
    fn overwrite_same_cookie() {
        let mut jar = CookieJar::new();
        jar.set("d.example", "uid", "v1");
        jar.set("d.example", "uid", "v2");
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.cookies_for("d.example")[0].value, "v2");
    }

    #[test]
    fn clear_restores_clean_slate() {
        let mut jar = CookieJar::new();
        jar.set("a.example", "x", "1");
        jar.set("b.example", "y", "2");
        jar.clear();
        assert!(jar.is_empty());
    }
}
