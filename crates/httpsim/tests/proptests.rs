//! Property tests for the HTTP substrate: URL and JSON round-trips.

use hb_http::{percent_decode, percent_encode, HStr, Json, QueryParams, Url};
use proptest::prelude::*;

/// Strategy for URL-safe-ish arbitrary strings (anything printable).
fn any_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,24}").unwrap()
}

fn hostish() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,8}(\\.[a-z][a-z0-9]{0,8}){1,3}").unwrap()
}

fn json_leaf() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite, roundtrip-safe numbers.
        (-1.0e12f64..1.0e12).prop_map(|n| Json::Num((n * 1000.0).round() / 1000.0)),
        any_text().prop_map(|s| Json::Str(HStr::from(s))),
    ]
}

fn json_value() -> impl Strategy<Value = Json> {
    json_leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            proptest::collection::btree_map(
                proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_]{0,10}").unwrap(),
                inner,
                0..4
            )
            .prop_map(|m| Json::Obj(m.into_iter().map(|(k, v)| (HStr::from(k), v)).collect())),
        ]
    })
}

proptest! {
    /// Percent-encoding always decodes back to the original string.
    #[test]
    fn percent_roundtrip(s in "\\PC*") {
        let encoded = percent_encode(&s);
        prop_assert_eq!(percent_decode(&encoded), s);
    }

    /// Query strings round-trip through encode/parse.
    #[test]
    fn query_roundtrip(pairs in proptest::collection::vec((any_text(), any_text()), 0..12)) {
        let mut q = QueryParams::new();
        for (k, v) in &pairs {
            q.append(k.clone(), v.clone());
        }
        let parsed = QueryParams::parse(&q.encode());
        // encode always emits `k=v` (even for empty k and v), so the
        // round-trip is exact — only bare `&&` segments are skipped by the
        // parser, and encode never produces those.
        let got: Vec<(String, String)> =
            parsed.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        prop_assert_eq!(got, pairs);
    }

    /// URLs round-trip through to_string/parse.
    #[test]
    fn url_roundtrip(
        host in hostish(),
        path in proptest::string::string_regex("(/[a-z0-9]{0,6}){0,4}").unwrap(),
        pairs in proptest::collection::vec((any_text(), any_text()), 0..6),
    ) {
        let mut u = Url::https(&host, if path.is_empty() { "/" } else { &path });
        for (k, v) in &pairs {
            if k.is_empty() && v.is_empty() { continue; }
            u.query.append(k.clone(), v.clone());
        }
        let reparsed = Url::parse(&u.to_string_full()).unwrap();
        prop_assert_eq!(u, reparsed);
    }

    /// JSON values round-trip through serialize/parse.
    #[test]
    fn json_roundtrip(v in json_value()) {
        let s = v.to_string_compact();
        let parsed = Json::parse(&s).unwrap();
        prop_assert_eq!(v, parsed);
    }

    /// The JSON parser never panics on arbitrary input.
    #[test]
    fn json_parser_total(s in "\\PC{0,64}") {
        let _ = Json::parse(&s);
    }

    /// The URL parser never panics on arbitrary input.
    #[test]
    fn url_parser_total(s in "\\PC{0,64}") {
        let _ = Url::parse(&s);
    }
}
