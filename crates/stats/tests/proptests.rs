//! Property tests for statistics invariants.

use hb_stats::{Ecdf, Samples, Whisker};
use proptest::prelude::*;

proptest! {
    /// ECDFs are monotone non-decreasing and end at 1.
    #[test]
    fn ecdf_monotone(values in proptest::collection::vec(-1e9f64..1e9, 0..300)) {
        let e = Ecdf::from_iter(values);
        prop_assert!(e.is_monotone());
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Samples::from_iter(values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut last = f64::NEG_INFINITY;
        for q in qs {
            let v = s.quantile(q).unwrap();
            prop_assert!(v >= last);
            prop_assert!(v >= s.min().unwrap() - 1e-9);
            prop_assert!(v <= s.max().unwrap() + 1e-9);
            last = v;
        }
    }

    /// Whisker percentiles are always ordered.
    #[test]
    fn whisker_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let w = Whisker::from_iter(values).unwrap();
        prop_assert!(w.is_ordered());
        prop_assert!(w.box_spread() >= 0.0);
        prop_assert!(w.whisker_spread() >= 0.0);
    }

    /// frac_above + frac_at_or_below = 1.
    #[test]
    fn fracs_partition(values in proptest::collection::vec(-100f64..100.0, 1..100), t in -100f64..100.0) {
        let s = Samples::from_iter(values);
        let sum = s.frac_above(t) + s.frac_at_or_below(t);
        prop_assert!((sum - 1.0).abs() < 1e-12);
    }

    /// CSV escape/parse round-trips arbitrary fields.
    #[test]
    fn csv_roundtrip(fields in proptest::collection::vec("[ -~]{0,16}", 1..6)) {
        let strings: Vec<String> = fields;
        let line: String = strings
            .iter()
            .map(|f| hb_stats::csv_escape(f))
            .collect::<Vec<_>>()
            .join(",") + "\n";
        let rows = hb_stats::parse_csv(&line);
        prop_assert_eq!(rows.len(), 1);
        prop_assert_eq!(&rows[0], &strings);
    }
}
