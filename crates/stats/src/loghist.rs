//! Log-bucketed latency histogram for the serving plane.
//!
//! The crawl figures aggregate latencies by collecting raw samples and
//! sorting ([`Samples`](crate::Samples)); the serving benches cannot — a
//! load run records millions of auction latencies across worker threads
//! and needs p50/p99/p999 without keeping any of them. [`LogHistogram`]
//! buckets `u64` values (the serving plane uses microseconds) into
//! logarithmic buckets with [`SUB_BUCKETS`] linear sub-buckets per
//! octave, bounding relative quantile error to `1/SUB_BUCKETS` while the
//! whole histogram stays a fixed flat array:
//!
//! * **allocation-free record path** — [`LogHistogram::record`] is pure
//!   integer arithmetic on a preallocated array (the only allocation is
//!   the array itself, at construction);
//! * **deterministic merge** — [`LogHistogram::merge`] adds counts
//!   element-wise, so `merge(a, b)` and `merge(b, a)` are byte-identical
//!   no matter how many workers' histograms fold in or in what order
//!   (pinned by tests); quantiles read from the merged histogram are
//!   therefore byte-stable across worker counts;
//! * **deterministic quantiles** — [`LogHistogram::value_at_quantile`]
//!   returns the upper bound of the bucket holding the target rank
//!   (capped at the true maximum), a pure function of the counts.

/// Linear sub-buckets per octave (32 ⇒ ≤ 3.2% relative error).
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Bucket count: one linear range `[0, SUB_BUCKETS)` plus
/// `64 - SUB_BITS` octaves of `SUB_BUCKETS` sub-buckets each.
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A fixed-size log-bucketed histogram over `u64` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Box<[u64]>,
    count: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index of `v`: values below [`SUB_BUCKETS`] map 1:1; above, the
/// top [`SUB_BITS`] bits after the leading one select the sub-bucket
/// within the value's octave.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let exp = msb - SUB_BITS;
        let mantissa = (v >> exp) - SUB_BUCKETS;
        ((exp as usize) + 1) * SUB_BUCKETS as usize + mantissa as usize
    }
}

/// Inclusive upper bound of bucket `i` (the value every member of the
/// bucket is `<=`; quantiles report this bound).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB_BUCKETS {
        i
    } else {
        let exp = (i >> SUB_BITS) - 1;
        let mantissa = i & (SUB_BUCKETS - 1);
        let lo = (mantissa + SUB_BUCKETS) << exp;
        lo + ((1u64 << exp) - 1)
    }
}

impl LogHistogram {
    /// Empty histogram (allocates the bucket array once).
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0u64; N_BUCKETS].into_boxed_slice(),
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Record one value. No allocation; O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`. Element-wise count addition: merging is
    /// commutative and associative, so any fold order over any worker
    /// partition yields byte-identical state.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q * count)`-th smallest value, capped at the
    /// recorded maximum. Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand: p50 / p99 / p999 in one call.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.99),
            self.value_at_quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS - 1);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Bucket indices are monotone and upper bounds honest for a sweep
        // of magnitudes.
        let mut prev = 0usize;
        for shift in 0..63 {
            let v = 1u64 << shift;
            let b = bucket_of(v);
            assert!(b >= prev, "monotone at {v}");
            assert!(bucket_upper(b) >= v, "upper bound covers {v}");
            prev = b;
        }
        assert!(bucket_of(u64::MAX) < N_BUCKETS);
        // Every bucket's upper bound maps back into the same bucket.
        for i in 0..N_BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i)), i, "bucket {i} roundtrip");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        let v = 123_456u64;
        h.record(v);
        let got = h.value_at_quantile(0.5);
        let err = (got as f64 - v as f64).abs() / v as f64;
        assert!(err <= 1.0 / SUB_BUCKETS as f64, "err {err}");
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p99, p999) = h.p50_p99_p999();
        assert!((470..=530).contains(&p50), "p50 {p50}");
        assert!((960..=1000).contains(&p99), "p99 {p99}");
        assert!((990..=1000).contains(&p999), "p999 {p999}");
        // Quantiles never exceed the recorded max.
        assert!(p999 <= h.max());
    }

    #[test]
    fn merge_is_commutative_bytewise() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..500u64 {
            a.record(i * 17 % 10_000);
            b.record(i * 101 % 1_000_000);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Full structural equality: counts array, count, max, sum.
        assert_eq!(ab, ba, "merge(a,b) == merge(b,a)");
        assert_eq!(ab.count(), 1000);
    }

    #[test]
    fn merge_is_associative_across_worker_partitions() {
        // The same sample stream split across 1, 2 and 4 "workers" folds
        // to identical histograms.
        let samples: Vec<u64> = (0..999u64).map(|i| (i * 7919) % 500_000).collect();
        let fold = |parts: usize| -> LogHistogram {
            let mut shards = vec![LogHistogram::new(); parts];
            for (i, &v) in samples.iter().enumerate() {
                shards[i % parts].record(v);
            }
            let mut out = LogHistogram::new();
            for sh in &shards {
                out.merge(sh);
            }
            out
        };
        let one = fold(1);
        assert_eq!(one, fold(2));
        assert_eq!(one, fold(4));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
