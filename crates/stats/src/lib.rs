//! # hb-stats
//!
//! Statistics toolkit for the header bidding reproduction: quantiles and
//! summary statistics ([`Samples`]), empirical CDFs ([`Ecdf`]), five-number
//! whisker summaries matching the paper's box plots ([`Whisker`]),
//! categorical counters and binned histograms ([`Counter`],
//! [`BinnedHistogram`]), log-bucketed mergeable latency histograms for
//! the serving plane ([`LogHistogram`]), grouped samples
//! ([`GroupedSamples`]), and ASCII/CSV table rendering ([`Table`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod ecdf;
pub mod histogram;
pub mod loghist;
pub mod quantile;
pub mod table;
pub mod whisker;

pub use binning::GroupedSamples;
pub use ecdf::{Ecdf, EcdfPoint};
pub use histogram::{BinnedHistogram, Counter};
pub use loghist::LogHistogram;
pub use quantile::Samples;
pub use table::{csv_escape, fmt_f, fmt_ms, fmt_pct, parse_csv, Align, Table};
pub use whisker::Whisker;
