//! Categorical counting and share computation.
//!
//! Several figures are "share of X per category" bar charts (top partners,
//! partner combinations, ad sizes). [`Counter`] accumulates counts over
//! string keys and reports shares and top-k rankings with deterministic
//! tie-breaking (count desc, then key asc).

use std::collections::BTreeMap;

/// A counting histogram over string categories.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl Counter {
    /// Empty counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one observation of `key`.
    pub fn add(&mut self, key: impl Into<String>) {
        self.add_n(key, 1);
    }

    /// Add `n` observations of `key`.
    pub fn add_n(&mut self, key: impl Into<String>, n: u64) {
        *self.counts.entry(key.into()).or_insert(0) += n;
        self.total += n;
    }

    /// Count for one key.
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Share of `key` in the total (0 when the counter is empty).
    pub fn share(&self, key: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(key) as f64 / self.total as f64
        }
    }

    /// All `(key, count)` pairs sorted by count desc, key asc.
    pub fn ranked(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counts
            .iter()
            .map(|(k, c)| (k.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Top `k` entries.
    pub fn top(&self, k: usize) -> Vec<(String, u64)> {
        let mut v = self.ranked();
        v.truncate(k);
        v
    }

    /// Iterate raw counts (key-ordered).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, c)| (k.as_str(), *c))
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        for (k, c) in other.counts.iter() {
            *self.counts.entry(k.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

/// A numeric histogram over fixed-width bins (used for "bins of 500 ranks"
/// or "bins of 10 popularity ranks" style figures).
#[derive(Clone, Debug)]
pub struct BinnedHistogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bin edge.
    pub overflow: u64,
}

impl BinnedHistogram {
    /// Create with `n_bins` bins of `width` starting at `lo`.
    pub fn new(lo: f64, width: f64, n_bins: usize) -> Self {
        assert!(width > 0.0 && n_bins > 0);
        BinnedHistogram {
            lo,
            width,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record a sample.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `[lo, hi)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + i as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Total in-range samples.
    pub fn total_in_range(&self) -> u64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_shares() {
        let mut c = Counter::new();
        c.add("dfp");
        c.add("dfp");
        c.add("appnexus");
        assert_eq!(c.count("dfp"), 2);
        assert_eq!(c.total(), 3);
        assert!((c.share("dfp") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.share("missing"), 0.0);
        assert_eq!(c.distinct(), 2);
    }

    #[test]
    fn ranking_is_deterministic() {
        let mut c = Counter::new();
        c.add_n("b", 5);
        c.add_n("a", 5);
        c.add_n("z", 9);
        assert_eq!(
            c.ranked(),
            vec![
                ("z".to_string(), 9),
                ("a".to_string(), 5),
                ("b".to_string(), 5)
            ]
        );
        assert_eq!(c.top(1), vec![("z".to_string(), 9)]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Counter::new();
        a.add("x");
        let mut b = Counter::new();
        b.add("x");
        b.add("y");
        a.merge(&b);
        assert_eq!(a.count("x"), 2);
        assert_eq!(a.count("y"), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_counter_is_sane() {
        let c = Counter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.share("k"), 0.0);
        assert!(c.ranked().is_empty());
    }

    #[test]
    fn binned_histogram_partitions() {
        let mut h = BinnedHistogram::new(0.0, 10.0, 3);
        for x in [-1.0, 0.0, 5.0, 10.0, 29.9, 30.0, 100.0] {
            h.add(x);
        }
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.bins(), &[2, 1, 1]);
        assert_eq!(h.bin_range(1), (10.0, 20.0));
        assert_eq!(h.total_in_range(), 4);
    }

    #[test]
    fn nan_goes_to_underflow() {
        let mut h = BinnedHistogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.underflow, 1);
    }
}
