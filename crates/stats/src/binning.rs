//! Grouping samples by integer keys and key ranges.
//!
//! Several figures group a metric by an integer dimension: latency by
//! number of demand partners (Fig. 15), by number of ad slots (Fig. 20),
//! by Alexa rank in bins of 500 (Fig. 13), by partner popularity rank in
//! bins of 10 (Figs. 16/24). [`GroupedSamples`] collects values per key and
//! summarizes each group.

use crate::quantile::Samples;
use crate::whisker::Whisker;
use std::collections::BTreeMap;

/// Samples grouped by a `u64` key.
#[derive(Clone, Debug, Default)]
pub struct GroupedSamples {
    groups: BTreeMap<u64, Vec<f64>>,
}

impl GroupedSamples {
    /// Empty grouping.
    pub fn new() -> Self {
        GroupedSamples::default()
    }

    /// Add a sample under `key`.
    pub fn add(&mut self, key: u64, value: f64) {
        if value.is_finite() {
            self.groups.entry(key).or_default().push(value);
        }
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of samples across groups.
    pub fn n_samples(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.groups.keys().copied()
    }

    /// Samples for one key.
    pub fn get(&self, key: u64) -> Option<Samples> {
        self.groups
            .get(&key)
            .map(|v| Samples::from_iter(v.iter().copied()))
    }

    /// Whisker summary per key, ascending.
    pub fn whiskers(&self) -> Vec<(u64, Whisker)> {
        self.groups
            .iter()
            .filter_map(|(k, v)| {
                Whisker::from_iter(v.iter().copied()).map(|w| (*k, w))
            })
            .collect()
    }

    /// Re-bucket keys into ranges of `width` (e.g. rank bins of 500). Keys
    /// are mapped to their bin index `key / width`.
    pub fn rebinned(&self, width: u64) -> GroupedSamples {
        assert!(width > 0);
        let mut out = GroupedSamples::new();
        for (k, vals) in &self.groups {
            for v in vals {
                out.add(k / width, *v);
            }
        }
        out
    }

    /// Share of total samples per key (e.g. "% of websites with k partners").
    pub fn shares(&self) -> Vec<(u64, f64)> {
        let total = self.n_samples() as f64;
        if total == 0.0 {
            return Vec::new();
        }
        self.groups
            .iter()
            .map(|(k, v)| (*k, v.len() as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_and_summaries() {
        let mut g = GroupedSamples::new();
        for v in [1.0, 2.0, 3.0] {
            g.add(1, v);
        }
        g.add(2, 10.0);
        assert_eq!(g.n_groups(), 2);
        assert_eq!(g.n_samples(), 4);
        assert_eq!(g.get(1).unwrap().median(), Some(2.0));
        assert!(g.get(3).is_none());
        let w = g.whiskers();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, 1);
        assert_eq!(w[1].1.p50, 10.0);
    }

    #[test]
    fn rebinning_rank_buckets() {
        let mut g = GroupedSamples::new();
        g.add(0, 1.0); // bin 0
        g.add(499, 2.0); // bin 0
        g.add(500, 3.0); // bin 1
        g.add(1200, 4.0); // bin 2
        let b = g.rebinned(500);
        assert_eq!(b.n_groups(), 3);
        assert_eq!(b.get(0).unwrap().len(), 2);
        assert_eq!(b.get(1).unwrap().len(), 1);
        assert_eq!(b.get(2).unwrap().len(), 1);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut g = GroupedSamples::new();
        for _ in 0..3 {
            g.add(1, 0.0);
        }
        g.add(2, 0.0);
        let shares = g.shares();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(shares[0], (1, 0.75));
    }

    #[test]
    fn non_finite_ignored() {
        let mut g = GroupedSamples::new();
        g.add(1, f64::NAN);
        g.add(1, f64::INFINITY);
        assert_eq!(g.n_samples(), 0);
        assert!(g.shares().is_empty());
    }
}
