//! Five-number whisker summaries.
//!
//! The paper's box plots show the 5th/25th/50th/75th/95th percentiles
//! (§5.2: "In all whiskers plots, we show 5th and 95th percentiles, and the
//! boxes show 25th and 75th percentiles, with a red line for median").

use crate::quantile::Samples;
use std::fmt;

/// A five-number summary matching the paper's whisker plots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Whisker {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
    /// Number of samples summarized.
    pub n: usize,
}

impl Whisker {
    /// Compute from samples; `None` when empty.
    pub fn from_samples(s: &Samples) -> Option<Whisker> {
        if s.is_empty() {
            return None;
        }
        Some(Whisker {
            p5: s.quantile(0.05)?,
            p25: s.quantile(0.25)?,
            p50: s.quantile(0.50)?,
            p75: s.quantile(0.75)?,
            p95: s.quantile(0.95)?,
            n: s.len(),
        })
    }

    /// Compute directly from values.
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Option<Whisker> {
        Whisker::from_samples(&Samples::from_iter(values))
    }

    /// Box height (p75 - p25): the "variability" the paper discusses for
    /// partner latencies and prices.
    pub fn box_spread(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Whisker span (p95 - p5).
    pub fn whisker_spread(&self) -> f64 {
        self.p95 - self.p5
    }

    /// Percentiles are ordered (property-test invariant).
    pub fn is_ordered(&self) -> bool {
        self.p5 <= self.p25 && self.p25 <= self.p50 && self.p50 <= self.p75 && self.p75 <= self.p95
    }
}

impl fmt::Display for Whisker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p5={:.1} p25={:.1} med={:.1} p75={:.1} p95={:.1} (n={})",
            self.p5, self.p25, self.p50, self.p75, self.p95, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_of_uniform_ramp() {
        let w = Whisker::from_iter((0..=100).map(|i| i as f64)).unwrap();
        assert_eq!(w.p50, 50.0);
        assert_eq!(w.p5, 5.0);
        assert_eq!(w.p95, 95.0);
        assert_eq!(w.p25, 25.0);
        assert_eq!(w.p75, 75.0);
        assert_eq!(w.n, 101);
        assert!(w.is_ordered());
        assert_eq!(w.box_spread(), 50.0);
        assert_eq!(w.whisker_spread(), 90.0);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(Whisker::from_iter(std::iter::empty()), None);
    }

    #[test]
    fn single_value_collapses() {
        let w = Whisker::from_iter([3.5]).unwrap();
        assert_eq!(w.p5, 3.5);
        assert_eq!(w.p95, 3.5);
        assert_eq!(w.box_spread(), 0.0);
        assert!(w.is_ordered());
    }

    #[test]
    fn display_renders() {
        let w = Whisker::from_iter([1.0, 2.0, 3.0]).unwrap();
        let s = format!("{w}");
        assert!(s.contains("med=2.0"));
        assert!(s.contains("n=3"));
    }
}
