//! ASCII table rendering and CSV output.
//!
//! Every figure/table in the harness renders two ways: a human-readable
//! ASCII table on stdout and a CSV file under `results/` that plotting
//! scripts can consume.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: headers.iter().map(|_| Align::Right).collect(),
            rows: Vec::new(),
        }
    }

    /// Set column alignments (defaults to all right-aligned).
    pub fn with_aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as an ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{:<width$}", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                    }
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (headers + rows, RFC-4180-style quoting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_row(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_row(row));
        }
        out
    }
}

fn csv_row(cells: &[String]) -> String {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&csv_escape(cell));
    }
    line.push('\n');
    line
}

/// Quote a CSV field when needed.
pub fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parse a CSV document produced by [`Table::to_csv`] (quoted fields
/// supported). Returns rows of fields, including the header row.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                c => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

/// Format a float with sensible default precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a fraction as a percentage string.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

/// Format milliseconds.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.0}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_basic_table() {
        let mut t = Table::new("demo", &["name", "value"]).with_aligns(&[Align::Left, Align::Right]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("22"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip_with_quotes() {
        let mut t = Table::new("q", &["k", "v"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        t.row(vec!["plain".into(), "1".into()]);
        let csv = t.to_csv();
        let rows = parse_csv(&csv);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1][0], "has,comma");
        assert_eq!(rows[1][1], "has\"quote");
        assert_eq!(rows[2], vec!["plain".to_string(), "1".to_string()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.456), "123");
        assert_eq!(fmt_f(1.234), "1.23");
        assert_eq!(fmt_f(0.1234), "0.1234");
        assert_eq!(fmt_pct(0.1428), "14.28%");
        assert_eq!(fmt_ms(600.0), "600ms");
        assert_eq!(fmt_ms(1500.0), "1.50s");
    }

    #[test]
    fn parse_csv_handles_crlf_and_trailing() {
        let rows = parse_csv("a,b\r\n1,2\r\n");
        assert_eq!(rows, vec![vec!["a".to_string(), "b".into()], vec!["1".into(), "2".into()]]);
        let rows2 = parse_csv("x,y");
        assert_eq!(rows2, vec![vec!["x".to_string(), "y".into()]]);
    }
}
