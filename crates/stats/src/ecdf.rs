//! Empirical cumulative distribution functions.
//!
//! Most figures in the paper are ECDFs (latency per website, partners per
//! site, late-bid fractions, bid prices). [`Ecdf`] produces the plotted
//! series: for each distinct sample value, the fraction of samples at or
//! below it.

use crate::quantile::Samples;

/// An empirical CDF over `f64` samples.
#[derive(Clone, Debug)]
pub struct Ecdf {
    samples: Samples,
}

/// One plotted ECDF point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EcdfPoint {
    /// Sample value (x-axis).
    pub x: f64,
    /// Cumulative fraction `P[X <= x]` (y-axis).
    pub p: f64,
}

impl Ecdf {
    /// Build from raw values (non-finite discarded).
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Ecdf {
        Ecdf {
            samples: Samples::from_iter(values),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `P[X <= x]`.
    pub fn eval(&self, x: f64) -> f64 {
        self.samples.frac_at_or_below(x)
    }

    /// Inverse ECDF (quantile function).
    pub fn inverse(&self, p: f64) -> Option<f64> {
        self.samples.quantile(p)
    }

    /// The underlying samples.
    pub fn samples(&self) -> &Samples {
        &self.samples
    }

    /// The full step-function series: one point per distinct value.
    pub fn points(&self) -> Vec<EcdfPoint> {
        let sorted = self.samples.sorted();
        let n = sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = sorted[i];
            let mut j = i + 1;
            while j < n && sorted[j] == v {
                j += 1;
            }
            out.push(EcdfPoint {
                x: v,
                p: j as f64 / n as f64,
            });
            i = j;
        }
        out
    }

    /// A downsampled series of at most `max_points` evenly spaced (in
    /// probability) points — what a plotting script would consume.
    pub fn series(&self, max_points: usize) -> Vec<EcdfPoint> {
        let pts = self.points();
        if pts.len() <= max_points || max_points == 0 {
            return pts;
        }
        let mut out = Vec::with_capacity(max_points);
        for k in 0..max_points {
            let idx = k * (pts.len() - 1) / (max_points - 1);
            out.push(pts[idx]);
        }
        out.dedup_by(|a, b| a.x == b.x);
        out
    }

    /// Verify the monotonicity invariant (used by property tests).
    pub fn is_monotone(&self) -> bool {
        let pts = self.points();
        pts.windows(2).all(|w| w[0].x < w[1].x && w[0].p <= w[1].p)
            && pts.last().map(|p| (p.p - 1.0).abs() < 1e-9).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_known_values() {
        let e = Ecdf::from_iter(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn points_deduplicate_values() {
        let e = Ecdf::from_iter(vec![5.0, 5.0, 5.0, 7.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], EcdfPoint { x: 5.0, p: 0.75 });
        assert_eq!(pts[1], EcdfPoint { x: 7.0, p: 1.0 });
    }

    #[test]
    fn last_point_reaches_one() {
        let e = Ecdf::from_iter((0..100).map(|i| i as f64));
        let pts = e.points();
        assert!((pts.last().unwrap().p - 1.0).abs() < 1e-12);
        assert!(e.is_monotone());
    }

    #[test]
    fn series_downsamples() {
        let e = Ecdf::from_iter((0..1000).map(|i| i as f64));
        let s = e.series(10);
        assert!(s.len() <= 10);
        assert_eq!(s.first().unwrap().x, 0.0);
        assert_eq!(s.last().unwrap().x, 999.0);
    }

    #[test]
    fn inverse_matches_quantile() {
        let e = Ecdf::from_iter(vec![10.0, 20.0, 30.0]);
        assert_eq!(e.inverse(0.5), Some(20.0));
        assert_eq!(e.inverse(0.0), Some(10.0));
    }

    #[test]
    fn empty_is_sane() {
        let e = Ecdf::from_iter(std::iter::empty());
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 1.0); // vacuous: 1 - frac_above(=0)
        assert!(e.points().is_empty());
        assert!(e.is_monotone());
    }
}
