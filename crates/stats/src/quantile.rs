//! Quantiles and summary statistics over `f64` samples.

/// A collection of samples with cached sorting.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    sorted: Vec<f64>,
}

impl Samples {
    /// Build from any iterator of values; non-finite values are discarded.
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Samples {
        let mut v: Vec<f64> = values.into_iter().filter(|x| x.is_finite()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Samples { sorted: v }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sorted access.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Quantile `q` in `[0, 1]` by linear interpolation; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            return Some(self.sorted[lo]);
        }
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (p50).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Sample standard deviation (n-1 denominator); `None` for n < 2.
    pub fn std_dev(&self) -> Option<f64> {
        if self.sorted.len() < 2 {
            return None;
        }
        let mean = self.mean()?;
        let ss: f64 = self.sorted.iter().map(|x| (x - mean) * (x - mean)).sum();
        Some((ss / (self.sorted.len() - 1) as f64).sqrt())
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn frac_above(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n_above = self
            .sorted
            .iter()
            .rev()
            .take_while(|&&x| x > threshold)
            .count();
        n_above as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples less than or equal to `threshold` (ECDF value).
    pub fn frac_at_or_below(&self, threshold: f64) -> f64 {
        1.0 - self.frac_above(threshold)
    }

    /// Interquartile range (p75 - p25).
    pub fn iqr(&self) -> Option<f64> {
        Some(self.quantile(0.75)? - self.quantile(0.25)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[f64]) -> Samples {
        Samples::from_iter(v.iter().copied())
    }

    #[test]
    fn quantiles_of_known_data() {
        let x = s(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(x.median(), Some(3.0));
        assert_eq!(x.quantile(0.0), Some(1.0));
        assert_eq!(x.quantile(1.0), Some(5.0));
        assert_eq!(x.quantile(0.25), Some(2.0));
    }

    #[test]
    fn interpolation_between_points() {
        let x = s(&[0.0, 10.0]);
        assert_eq!(x.quantile(0.5), Some(5.0));
        assert_eq!(x.quantile(0.75), Some(7.5));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(s(&[]).median(), None);
        assert_eq!(s(&[]).mean(), None);
        let one = s(&[7.0]);
        assert_eq!(one.median(), Some(7.0));
        assert_eq!(one.std_dev(), None);
    }

    #[test]
    fn non_finite_discarded() {
        let x = Samples::from_iter(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(x.len(), 2);
        assert_eq!(x.max(), Some(2.0));
    }

    #[test]
    fn mean_and_std() {
        let x = s(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(x.mean(), Some(5.0));
        let sd = x.std_dev().unwrap();
        assert!((sd - 2.138089935).abs() < 1e-6, "sd {sd}");
    }

    #[test]
    fn frac_above_below() {
        let x = s(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.frac_above(2.0), 0.5);
        assert_eq!(x.frac_at_or_below(2.0), 0.5);
        assert_eq!(x.frac_above(0.0), 1.0);
        assert_eq!(x.frac_above(10.0), 0.0);
        assert_eq!(s(&[]).frac_above(1.0), 0.0);
    }

    #[test]
    fn iqr_works() {
        let x = s(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(x.iqr(), Some(2.0));
    }
}
