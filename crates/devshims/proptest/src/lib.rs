//! Offline stand-in for the `proptest` crate.
//!
//! The container building this workspace has no crates.io access, so this
//! crate implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_recursive`,
//! range/tuple/collection/regex strategies, `any::<T>()`, and the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from real proptest, by design:
//! * no shrinking — failures report the case number; runs are fully
//!   deterministic (the RNG is seeded from the test name), so a failing
//!   case reproduces exactly;
//! * regex support covers the operators the tests use (classes, groups,
//!   alternation, `* + ? {m,n}`, `\PC`), not the full syntax;
//! * case count defaults to 64, overridable via `PROPTEST_CASES`.

use std::rc::Rc;

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case was rejected by `prop_assume!`.
        Reject,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Result of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Deterministic RNG for test-case generation (xorshift64*).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Depth budget handed to top-level `gen` calls by the `proptest!` macro.
pub const DEFAULT_DEPTH: u32 = 8;

/// A value generator. The `depth` parameter bounds recursive strategies.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` is the leaf, `f` builds the
    /// recursive case from a handle to the whole strategy. `depth` bounds
    /// recursion; the other two parameters (target size hints in real
    /// proptest) are accepted and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let node = Rc::new(RecursiveNode {
            leaf: self.boxed(),
            branch: std::cell::OnceCell::new(),
            budget: depth,
        });
        let handle = BoxedStrategy(node.clone() as Rc<dyn StrategyObj<Value = Self::Value>>);
        let branch = f(handle.clone()).boxed();
        let _ = node.branch.set(branch);
        handle
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait StrategyObj {
    type Value;
    fn gen_obj(&self, rng: &mut TestRng, depth: u32) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn gen_obj(&self, rng: &mut TestRng, depth: u32) -> S::Value {
        self.gen(rng, depth)
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng, depth: u32) -> T {
        self.0.gen_obj(rng, depth)
    }
}

struct RecursiveNode<T> {
    leaf: BoxedStrategy<T>,
    branch: std::cell::OnceCell<BoxedStrategy<T>>,
    budget: u32,
}

impl<T> StrategyObj for RecursiveNode<T> {
    type Value = T;
    fn gen_obj(&self, rng: &mut TestRng, depth: u32) -> T {
        let depth = depth.min(self.budget);
        match self.branch.get() {
            Some(branch) if depth > 0 && rng.below(3) != 0 => branch.gen(rng, depth - 1),
            _ => self.leaf.gen(rng, depth),
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng, _depth: u32) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen(&self, rng: &mut TestRng, depth: u32) -> U {
        (self.f)(self.inner.gen(rng, depth))
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng, depth: u32) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].gen(rng, depth)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng, _depth: u32) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roundtrip-friendly values spanning many magnitudes.
        let mag = rng.below(600) as i32 - 300;
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        mantissa * (mag as f64 / 10.0).exp()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng, _depth: u32) -> $t {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(hi > lo, "empty range strategy");
                (lo + rng.below(hi - lo)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng, _depth: u32) -> $t {
                let lo = *self.start() as u64;
                let hi = *self.end() as u64;
                let span = (hi - lo).wrapping_add(1);
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span)) as $t
                }
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng, _depth: u32) -> $t {
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng, _depth: u32) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng, _depth: u32) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                ($(self.$idx.gen(rng, depth),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// A `&str` used as a strategy is treated as a regex (proptest behavior).
impl Strategy for &str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng, _depth: u32) -> String {
        let node = regex::parse(self).expect("invalid regex strategy literal");
        let mut out = String::new();
        node.gen_into(rng, &mut out);
        out
    }
}

pub mod string {
    //! Regex-driven string strategies.

    use super::{regex, Strategy, TestRng};

    /// A strategy generating strings matching a regex.
    #[derive(Clone)]
    pub struct RegexGeneratorStrategy {
        node: regex::Node,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn gen(&self, rng: &mut TestRng, _depth: u32) -> String {
            let mut out = String::new();
            self.node.gen_into(rng, &mut out);
            out
        }
    }

    /// Compile `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        regex::parse(pattern).map(|node| RegexGeneratorStrategy { node })
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size bounds accepted by [`vec`] and [`btree_map`].
    pub trait SizeRange {
        /// Pick a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.end > self.start, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Vec of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen(rng, depth)).collect()
        }
    }

    /// BTreeMap with keys from `key`, values from `value`, sized by `size`
    /// (duplicate keys collapse, matching real proptest).
    pub fn btree_map<K: Strategy, V: Strategy, R: SizeRange>(
        key: K,
        value: V,
        size: R,
    ) -> BTreeMapStrategy<K, V, R> {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.gen(rng, depth), self.value.gen(rng, depth)))
                .collect()
        }
    }
}

pub(crate) mod regex {
    //! A tiny regex *generator* (not matcher): parses the subset of regex
    //! syntax the workspace's tests use and produces matching strings.

    use super::TestRng;

    /// Max repetitions for unbounded quantifiers (`*`, `+`).
    const UNBOUNDED_CAP: u32 = 8;

    #[derive(Clone, Debug)]
    pub enum Node {
        Literal(char),
        /// Inclusive char ranges, e.g. `[a-z0-9._-]`.
        Class(Vec<(char, char)>),
        /// `\PC` — any printable char (ASCII printable + a few multibyte).
        AnyPrintable,
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    impl Node {
        pub fn gen_into(&self, rng: &mut TestRng, out: &mut String) {
            match self {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                    let mut pick = rng.below(total as u64) as u32;
                    for (a, b) in ranges {
                        let span = *b as u32 - *a as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick).unwrap_or(*a));
                            break;
                        }
                        pick -= span;
                    }
                }
                Node::AnyPrintable => {
                    const EXTRA: [char; 4] = ['\u{e9}', '\u{3b1}', '\u{4e2d}', '\u{1F600}'];
                    if rng.below(8) == 0 {
                        out.push(EXTRA[rng.below(EXTRA.len() as u64) as usize]);
                    } else {
                        out.push((0x20u8 + rng.below(95) as u8) as char);
                    }
                }
                Node::Seq(parts) => {
                    for p in parts {
                        p.gen_into(rng, out);
                    }
                }
                Node::Alt(arms) => {
                    arms[rng.below(arms.len() as u64) as usize].gen_into(rng, out);
                }
                Node::Repeat(inner, lo, hi) => {
                    let n = lo + rng.below((*hi - *lo + 1) as u64) as u32;
                    for _ in 0..n {
                        inner.gen_into(rng, out);
                    }
                }
            }
        }
    }

    pub fn parse(pattern: &str) -> Result<Node, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let node = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected {:?} at {pos} in {pattern:?}", chars[pos]));
        }
        Ok(node)
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        let mut arms = vec![parse_seq(chars, pos)?];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            arms.push(parse_seq(chars, pos)?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alt(arms)
        })
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        let mut parts = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos)?;
            parts.push(parse_quant(chars, pos, atom)?);
        }
        Ok(Node::Seq(parts))
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos)?;
                if *pos >= chars.len() || chars[*pos] != ')' {
                    return Err("unclosed group".into());
                }
                *pos += 1;
                Ok(inner)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let mut c = chars[*pos];
                    if c == '\\' && *pos + 1 < chars.len() {
                        *pos += 1;
                        c = chars[*pos];
                    }
                    *pos += 1;
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        let hi = chars[*pos + 1];
                        *pos += 2;
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                if *pos >= chars.len() {
                    return Err("unclosed class".into());
                }
                *pos += 1;
                Ok(Node::Class(ranges))
            }
            '\\' => {
                *pos += 1;
                if *pos >= chars.len() {
                    return Err("dangling escape".into());
                }
                let c = chars[*pos];
                *pos += 1;
                match c {
                    'P' | 'p' => {
                        // Unicode category escape: consume the category
                        // name (`C`, or `{..}`) and generate printables.
                        if *pos < chars.len() && chars[*pos] == '{' {
                            while *pos < chars.len() && chars[*pos] != '}' {
                                *pos += 1;
                            }
                            *pos += 1;
                        } else if *pos < chars.len() {
                            *pos += 1;
                        }
                        Ok(Node::AnyPrintable)
                    }
                    'd' => Ok(Node::Class(vec![('0', '9')])),
                    'w' => Ok(Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')])),
                    'n' => Ok(Node::Literal('\n')),
                    't' => Ok(Node::Literal('\t')),
                    other => Ok(Node::Literal(other)),
                }
            }
            '.' => {
                *pos += 1;
                Ok(Node::Class(vec![(' ', '~')]))
            }
            c => {
                *pos += 1;
                Ok(Node::Literal(c))
            }
        }
    }

    fn parse_quant(chars: &[char], pos: &mut usize, atom: Node) -> Result<Node, String> {
        if *pos >= chars.len() {
            return Ok(atom);
        }
        let node = match chars[*pos] {
            '*' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            '+' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            '?' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            '{' => {
                *pos += 1;
                let mut lo = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    lo.push(chars[*pos]);
                    *pos += 1;
                }
                let lo: u32 = lo.parse().map_err(|_| "bad repetition".to_string())?;
                let hi = if *pos < chars.len() && chars[*pos] == ',' {
                    *pos += 1;
                    let mut hi = String::new();
                    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                        hi.push(chars[*pos]);
                        *pos += 1;
                    }
                    if hi.is_empty() {
                        lo + UNBOUNDED_CAP
                    } else {
                        hi.parse().map_err(|_| "bad repetition".to_string())?
                    }
                } else {
                    lo
                };
                if *pos >= chars.len() || chars[*pos] != '}' {
                    return Err("unclosed repetition".into());
                }
                *pos += 1;
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => return Ok(atom),
        };
        Ok(node)
    }
}

/// Number of cases per property (env `PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

/// Assert a condition inside a property; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
}

/// Reject the current case (it does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases()` generated cases.
#[macro_export]
macro_rules! proptest {
    ($(#![proptest_config($cfg:expr)])? $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($strategy,)+);
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let cases = $crate::cases();
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < cases {
                    attempts += 1;
                    if attempts > cases * 20 {
                        panic!("too many rejected cases in {}", stringify!($name));
                    }
                    // A tuple of strategies is itself a strategy for a
                    // tuple of values; destructure into the parameters.
                    let ($($pat,)+) =
                        $crate::Strategy::gen(&strategies, &mut rng, $crate::DEFAULT_DEPTH);
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {accepted} (attempt {attempts}): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}
