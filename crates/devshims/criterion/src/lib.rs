//! Offline stand-in for the `criterion` crate.
//!
//! The container building this workspace has no crates.io access, so this
//! crate implements the benchmarking API subset the workspace's benches
//! use: `Criterion::bench_function`, benchmark groups with
//! [`Throughput`], the `criterion_group!`/`criterion_main!` macros, and
//! CLI handling for `--test` (run every bench once, as `cargo bench --
//! --test` does) and name filters.
//!
//! Measurement model: warm up briefly, size a batch to the target time,
//! then take `sample_size` timed samples and report min/median/mean.
//! Results are printed in a criterion-like format and appended as JSON
//! lines to `target/shim-criterion/<bench>.json` so successive runs can be
//! compared.

use std::hint::black_box as hint_black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Benchmarks run (not filtered out) across every group in the process.
/// [`finalize`] uses it to fail a run whose name filter matched nothing —
/// otherwise a renamed bench turns a CI smoke like
/// `cargo bench -- --test some_bench` into a silent no-op.
static MATCHED: AtomicUsize = AtomicUsize::new(0);

/// Parse the bench CLI once: `(test_mode, name filter)`. Shared by
/// [`Criterion::default`] and [`finalize`], so the value-taking-flag list
/// cannot drift between the two.
fn parse_cli() -> (bool, Option<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut test_mode = false;
    let mut filter = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--test" | "-t" => test_mode = true,
            "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
            | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                // Flags (with possible value) accepted for CLI
                // compatibility; the value, if any, is skipped below.
                if matches!(args[i].as_str(), "--profile-time" | "--save-baseline"
                    | "--baseline" | "--measurement-time" | "--warm-up-time" | "--sample-size")
                {
                    i += 1;
                }
            }
            word if !word.starts_with('-') => filter = Some(word.to_string()),
            _ => {}
        }
        i += 1;
    }
    (test_mode, filter)
}

/// End-of-run check, called by [`criterion_main!`] after every group: a
/// run with a name filter that selected zero benchmarks exits non-zero
/// instead of reporting vacuous success.
pub fn finalize() {
    if let (_, Some(f)) = parse_cli() {
        if MATCHED.load(Ordering::Relaxed) == 0 {
            eprintln!("error: no benchmark matched filter {f:?}");
            std::process::exit(1);
        }
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One recorded benchmark result.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Nanoseconds per iteration (median of samples).
    pub median_ns: f64,
    /// Nanoseconds per iteration (mean of samples).
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let (test_mode, filter) = parse_cli();
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(1500),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id, None, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        MATCHED.fetch_add(1, Ordering::Relaxed);
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            println!("testing {id} ... ok");
            return;
        }

        // Warm-up + batch sizing: run once, then size the batch so one
        // sample lasts roughly measurement_time / sample_size.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() as u64 / self.sample_size.max(1) as u64;
        let iters = (per_sample / once.as_nanos().max(1) as u64).clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let sample = Sample {
            id: id.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            throughput,
        };
        report(&sample, iters);
        persist(&sample);
    }
}

/// A benchmark group (throughput-annotated sub-namespace).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(3);
        self
    }

    /// Set the target total measurement time for this group (heavy benches
    /// raise it so each sample still runs several iterations and the
    /// reported median is trustworthy).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{id}", self.name);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(s: &Sample, iters: u64) {
    let mut line = format!(
        "{:<40} time: [{} {} {}]",
        s.id,
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.mean_ns)
    );
    if let Some(Throughput::Elements(n)) = s.throughput {
        let per_sec = n as f64 / (s.median_ns / 1e9);
        line.push_str(&format!("  thrpt: {per_sec:.1} elem/s"));
    }
    if let Some(Throughput::Bytes(n)) = s.throughput {
        let per_sec = n as f64 / (s.median_ns / 1e9);
        line.push_str(&format!("  thrpt: {:.1} MiB/s", per_sec / (1024.0 * 1024.0)));
    }
    line.push_str(&format!("  ({iters} iters/sample)"));
    println!("{line}");
}

/// The workspace `target` dir: benches run with cwd = package root, so
/// walk up to the outermost directory holding a `Cargo.toml` (the
/// workspace root) and use its `target`, honoring `CARGO_TARGET_DIR`.
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut root = cwd.as_path();
    for dir in cwd.ancestors() {
        if dir.join("Cargo.toml").exists() {
            root = dir;
        }
    }
    root.join("target")
}

fn persist(s: &Sample) {
    let dir = target_dir().join("shim-criterion");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let safe: String = s
        .id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("{safe}.json"));
    let epoch_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let elems = match s.throughput {
        Some(Throughput::Elements(n)) => format!(",\"elems\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
        None => String::new(),
    };
    let line = format!(
        "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"at_ms\":{epoch_ms}{elems}}}\n",
        s.id, s.median_ns, s.mean_ns, s.min_ns
    );
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Declare a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench entry point. After every group ran, [`finalize`]
/// fails the process when a name filter matched no benchmark — a CI
/// smoke pinned to a renamed bench id must go red, not vacuously green.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}
