//! # hb-repro
//!
//! Reproduction of *"No More Chasing Waterfalls: A Measurement Study of
//! the Header Bidding Ad-Ecosystem"* (IMC 2019) as a Rust workspace.
//!
//! This façade crate re-exports the whole stack:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | engine | [`simnet`] | discrete-event simulator, RNG, distributions, faults |
//! | web | [`http`] | URLs, query params, JSON, messages, endpoints/router |
//! | browser | [`dom`] | DOM events, HTML scanning, JS thread, webRequest bus |
//! | ad-tech | [`adtech`] | partners, RTB, ad server, HB wrapper, waterfall |
//! | **detector** | [`core`] | **HBDetector — the paper's contribution** |
//! | universe | [`ecosystem`] | 84-partner catalog, publishers, toplists, Wayback |
//! | harness | [`crawler`] | sessions, campaigns, datasets |
//! | statistics | [`stats`] | ECDF, quantiles, whiskers, tables |
//! | figures | [`analysis`] | every table/figure regenerated as a report |
//! | serving | [`serve`] | auction orchestrator: budgets, breakers, hedging, shedding |
//!
//! ## Quickstart
//!
//! ```
//! use hb_repro::prelude::*;
//!
//! // A 200-site universe, crawled once, indexed once for the figures.
//! let eco = Ecosystem::generate(EcosystemConfig::tiny_scale());
//! let dataset = run_campaign(&eco, &CampaignConfig::default());
//! let index = hb_repro::analysis::DatasetIndex::build(&dataset);
//! let summary = hb_repro::analysis::summary::t1_summary(&index);
//! assert!(summary.metric("websites_with_hb").unwrap() > 0.0);
//! ```

pub use hb_adtech as adtech;
pub use hb_analysis as analysis;
pub use hb_core as core;
pub use hb_crawler as crawler;
pub use hb_distd as distd;
pub use hb_dom as dom;
pub use hb_ecosystem as ecosystem;
pub use hb_http as http;
pub use hb_serve as serve;
pub use hb_simnet as simnet;
pub use hb_stats as stats;

/// The most commonly used items in one import.
pub mod prelude {
    pub use hb_adtech::{AdSize, AdUnit, Cpm, HbFacet, RobustnessPolicy};
    pub use hb_analysis::{
        all_reports, dataset_reports, fault_reports, DatasetIndex, DatasetIndexBuilder,
        FaultSlice, FigureReport,
    };
    pub use hb_core::{HbDetector, Interner, PartnerList, Symbol, VisitRecord};
    pub use hb_crawler::{
        adoption_study, crawl_site, overlap_study, run_campaign, run_campaign_streamed,
        CampaignConfig, CrawlDataset, SessionConfig, ShardSpec, VisitChunk,
    };
    pub use hb_ecosystem::{
        Ecosystem, EcosystemConfig, OutageWindow, ScenarioConfig, SiteFactory,
    };
    pub use hb_serve::{
        serve_load, AdRequest, AuctionOutcome, Decision, LoadGenConfig, ServeConfig,
        ServeReport,
    };
    pub use hb_simnet::{Rng, SimDuration, SimTime};
}
